//! A bank-transfer workload: the classic transactional-memory consistency
//! benchmark, used here to stress multi-line atomicity with an invariant
//! that any isolation bug destroys immediately.
//!
//! Each operation moves a random amount between two random accounts. The
//! global invariant — the sum of all balances never changes — holds only if
//! every debit+credit pair is atomic and isolated.

use crate::harness::{convention, emit_tx_with_fallback, WorkloadReport};
use ztm_core::GrSaveMask;
use ztm_isa::{gr::*, Assembler, MemOperand, Program, RegOrImm};
use ztm_mem::Address;
use ztm_sim::System;
use ztm_stm::{HtmBody, Stm, TxBody};

/// Synchronization of the transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankMethod {
    /// One global lock around every transfer.
    Lock,
    /// Each transfer is one constrained transaction (2 accounts = 2
    /// octowords, well within the §II.D budget).
    Tbeginc,
    /// Figure 1 TBEGIN with retry threshold and the global lock as
    /// fallback.
    Tbegin,
    /// Every transfer is a TL2 software transaction ([`ztm_stm`]).
    PureStm,
    /// TBEGIN fast path subscribing to the TL2 stripe locks, falling back
    /// to the software path after the retry budget.
    HtmStmFallback,
}

/// The bank: `accounts` balances, each on its own cache line.
#[derive(Debug, Clone)]
pub struct Bank {
    /// Number of accounts.
    pub accounts: u64,
    method: BankMethod,
    base: u64,
    lock: u64,
    stm: Stm,
}

impl Bank {
    /// Creates a bank description.
    ///
    /// # Panics
    ///
    /// Panics if `accounts` is zero.
    pub fn new(accounts: u64, method: BankMethod) -> Self {
        assert!(accounts > 0);
        Bank {
            accounts,
            method,
            base: 0x5000_0000,
            lock: 0x5000_0000 - 256,
            stm: Stm::new(),
        }
    }

    /// Deposits `initial` into every account host-side.
    pub fn open(&self, sys: &mut System, initial: u64) {
        for i in 0..self.accounts {
            sys.mem_mut()
                .store_u64(Address::new(self.base + i * 256), initial);
        }
    }

    /// Sum of all balances.
    pub fn total(&self, sys: &System) -> u64 {
        (0..self.accounts)
            .map(|i| sys.mem().load_u64(Address::new(self.base + i * 256)))
            .sum()
    }

    /// Emits one transfer: R8 → debit account address, R9 → credit account
    /// address, R10 → amount.
    fn emit_transfer(&self, a: &mut Assembler) {
        a.lg(R2, MemOperand::based(R8, 0));
        a.sgr(R2, R10);
        a.stg(R2, MemOperand::based(R8, 0));
        a.lg(R2, MemOperand::based(R9, 0));
        a.agr(R2, R10);
        a.stg(R2, MemOperand::based(R9, 0));
    }

    /// The transfer as a TL2 software-transaction body.
    fn emit_transfer_stm(&self, tx: &mut TxBody) {
        tx.read(R2, R8);
        tx.asm().sgr(R2, R10);
        tx.write(R2, R8);
        tx.read(R2, R9);
        tx.asm().agr(R2, R10);
        tx.write(R2, R9);
    }

    /// The transfer on the hybrid hardware fast path.
    fn emit_transfer_htm(&self, h: &mut HtmBody) {
        h.read(R2, R8);
        h.asm().sgr(R2, R10);
        h.write(R2, R8);
        h.read(R2, R9);
        h.asm().agr(R2, R10);
        h.write(R2, R9);
    }

    fn emit_locked(&self, a: &mut Assembler, p: &str) {
        a.label(&format!("{p}_acq"));
        a.ltg(R1, MemOperand::absolute(self.lock));
        a.jz(&format!("{p}_try"));
        a.delay(24);
        a.j(&format!("{p}_acq"));
        a.label(&format!("{p}_try"));
        a.lghi(R2, 0);
        a.lghi(R3, 1);
        a.csg(R2, R3, MemOperand::absolute(self.lock));
        a.jnz(&format!("{p}_acq"));
        self.emit_transfer(a);
        a.lghi(R2, 0);
        a.stg(R2, MemOperand::absolute(self.lock));
    }

    /// Builds the transfer program.
    pub fn program(&self, ops_per_cpu: u64) -> Program {
        let mut a = Assembler::new(0);
        a.lghi(convention::OPS_LEFT, ops_per_cpu as i64);
        a.lghi(convention::OP_CYCLES, 0);
        a.lghi(convention::OPS_DONE, 0);
        a.label("op_loop");
        a.rand_mod(R8, RegOrImm::Imm(self.accounts));
        a.rand_mod(R9, RegOrImm::Imm(self.accounts));
        a.rand_mod(R10, RegOrImm::Imm(100)); // amount
        a.sllg(R8, R8, 8);
        a.aghi(R8, self.base as i64);
        a.sllg(R9, R9, 8);
        a.aghi(R9, self.base as i64);
        a.rdclk(convention::T_START);
        match self.method {
            BankMethod::Lock => self.emit_locked(&mut a, "bk"),
            BankMethod::Tbeginc => {
                a.tbeginc(GrSaveMask::ALL);
                self.emit_transfer(&mut a);
                a.tend();
            }
            BankMethod::Tbegin => emit_tx_with_fallback(
                &mut a,
                "tx",
                self.lock,
                6,
                |a| self.emit_transfer(a),
                |a| self.emit_locked(a, "fb"),
            ),
            BankMethod::PureStm => {
                self.stm
                    .emit_tx(&mut a, "st", &[], |tx| self.emit_transfer_stm(tx));
            }
            BankMethod::HtmStmFallback => {
                self.stm.emit_hybrid_tx(
                    &mut a,
                    "hy",
                    R5,
                    6,
                    &[],
                    |h| self.emit_transfer_htm(h),
                    |tx| self.emit_transfer_stm(tx),
                );
            }
        }
        a.rdclk(convention::T_END);
        a.sgr(convention::T_END, convention::T_START);
        a.agr(convention::OP_CYCLES, convention::T_END);
        a.aghi(convention::OPS_DONE, 1);
        a.brctg(convention::OPS_LEFT, "op_loop");
        a.halt();
        a.assemble().expect("bank workload assembles")
    }

    /// Runs the workload on every CPU.
    pub fn run(&self, sys: &mut System, ops_per_cpu: u64) -> WorkloadReport {
        let prog = self.program(ops_per_cpu);
        sys.load_program_all(&prog);
        if matches!(
            self.method,
            BankMethod::PureStm | BankMethod::HtmStmFallback
        ) {
            self.stm.layout.install(sys);
        }
        sys.run_until_halt(2_000_000_000);
        WorkloadReport::collect(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ztm_sim::SystemConfig;

    fn conserved(method: BankMethod, cpus: usize, seed: u64) {
        let bank = Bank::new(16, method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(seed));
        bank.open(&mut sys, 1_000);
        let rep = bank.run(&mut sys, 40);
        assert_eq!(rep.committed_ops(), cpus as u64 * 40);
        assert_eq!(
            bank.total(&sys),
            16 * 1_000,
            "money conservation ({method:?}, {cpus} CPUs, seed {seed})"
        );
    }

    #[test]
    fn money_is_conserved_under_locks() {
        conserved(BankMethod::Lock, 4, 1);
    }

    #[test]
    fn money_is_conserved_under_constrained_tx() {
        conserved(BankMethod::Tbeginc, 6, 2);
        conserved(BankMethod::Tbeginc, 6, 3);
    }

    #[test]
    fn money_is_conserved_under_tbegin_with_fallback() {
        conserved(BankMethod::Tbegin, 6, 4);
    }

    #[test]
    fn money_is_conserved_under_pure_stm() {
        conserved(BankMethod::PureStm, 6, 7);
    }

    #[test]
    fn money_is_conserved_under_hybrid_fallback() {
        conserved(BankMethod::HtmStmFallback, 6, 8);
    }

    #[test]
    fn self_transfers_are_harmless() {
        // R8 == R9 happens with probability 1/16 per op; debit+credit of
        // the same account must net to zero.
        let bank = Bank::new(1, BankMethod::Tbeginc);
        let mut sys = System::new(SystemConfig::with_cpus(2).seed(5));
        bank.open(&mut sys, 500);
        bank.run(&mut sys, 30);
        assert_eq!(bank.total(&sys), 500);
    }
}
