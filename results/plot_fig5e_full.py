#!/usr/bin/env python3
"""Render a full-topology sweep table from a BENCH_*.json artifact.

Stdlib only (json + string formatting): reads the artifact's "sweep"
table — the exact rows the figure binary printed — and renders

  * an SVG line chart (log-y) with the zEC12 chip (6) and book
    (36/72/108) coherence boundaries marked, and
  * an ASCII summary of the step-function drops the rows show when the
    sweep crosses a boundary (in fig 5(e), the global-lock row loses
    throughput at every book step; elision collapses between 72 and 144
    where cross-book XI latency exceeds the transactional window).

Works on any artifact carrying a "sweep" table over a CPU-count x-axis:
fig 5(e) (BENCH_fig5e_hashtable_full.json, the default) and fig 5(a)
(BENCH_fig5a_pools_full.json, six lock/TBEGINC/TBEGIN × pool series).

Usage: python3 results/plot_fig5e_full.py [path-to-json] [path-to-svg]
"""

import json
import math
import sys

CHIP, BOOK, MAX_CPUS = 6, 36, 144
W, H, ML, MR, MT, MB = 640, 400, 56, 16, 28, 44
COLORS = {
    "lock": "#c44e52", "elision": "#4c72b0", "unsync": "#55a868",
    # fig 5(a): warm tones for the small pool, cool for the large.
    "lock_small": "#c44e52", "tbeginc_small": "#dd8452", "tbegin_small": "#937860",
    "lock_large": "#8172b3", "tbeginc_large": "#4c72b0", "tbegin_large": "#55a868",
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    sweep = doc.get("sweep")
    if not sweep:
        sys.exit(f"{path}: no 'sweep' table — regenerate with a current fig5e binary")
    rows = sweep["rows"]
    series = {name: [(r[0], r[1 + i]) for r in rows] for i, name in enumerate(sweep["series"])}
    return doc["bench"], series


def sx(cpus):
    return ML + (W - ML - MR) * (cpus - 1) / (MAX_CPUS - 1)


def sy(v, lo, hi):
    t = (math.log10(v) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return H - MB - (H - MB - MT) * t


def svg(bench, series, out):
    vals = [v for pts in series.values() for _, v in pts if v > 0]
    lo = 10 ** math.floor(math.log10(min(vals)))
    hi = 10 ** math.ceil(math.log10(max(vals)))
    e = ['<svg xmlns="http://www.w3.org/2000/svg" '
         f'width="{W}" height="{H}" font-family="monospace" font-size="11">',
         f'<rect width="{W}" height="{H}" fill="white"/>',
         f'<text x="{ML}" y="16">fig 5(e) at the full zEC12 topology '
         '(normalized throughput, log scale) — dashes: chip/book boundaries</text>']
    dec = lo
    while dec <= hi:  # log-y gridlines, one per decade
        y = sy(dec, lo, hi)
        e.append(f'<line x1="{ML}" y1="{y:.1f}" x2="{W - MR}" y2="{y:.1f}" stroke="#ddd"/>')
        e.append(f'<text x="4" y="{y + 4:.1f}">{dec:g}</text>')
        dec *= 10
    for b in (CHIP, BOOK, 2 * BOOK, 3 * BOOK, 4 * BOOK):
        x = sx(b)
        e.append(f'<line x1="{x:.1f}" y1="{MT}" x2="{x:.1f}" y2="{H - MB}" '
                 'stroke="#999" stroke-dasharray="4 3"/>')
        e.append(f'<text x="{x - 8:.1f}" y="{H - MB + 14}">{b}</text>')
    for name, pts in series.items():
        color = COLORS.get(name, "#333")
        path = " ".join(f"{'M' if i == 0 else 'L'}{sx(c):.1f},{sy(v, lo, hi):.1f}"
                        for i, (c, v) in enumerate(pts))
        e.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for c, v in pts:
            e.append(f'<circle cx="{sx(c):.1f}" cy="{sy(v, lo, hi):.1f}" r="3" fill="{color}"/>')
        c, v = pts[-1]
        e.append(f'<text x="{sx(c) - 40:.1f}" y="{sy(v, lo, hi) - 8:.1f}" '
                 f'fill="{color}">{name}</text>')
    e.append(f'<text x="{(W - ML) // 2}" y="{H - 6}">simulated CPUs</text>')
    e.append("</svg>")
    with open(out, "w") as f:
        f.write("\n".join(e) + "\n")
    return out


def boundary_table(series):
    print(f"{'rows':>8} {'boundary':>18} " +
          " ".join(f"{n:>10}" for n in series))
    names = list(series)
    pts = {n: dict(series[n]) for n in names}
    xs = [c for c, _ in series[names[0]]]
    for a, b in zip(xs, xs[1:]):
        books = [str(k) for k in range(a + 1, b + 1) if k % BOOK == 0]
        chips = sum(1 for k in range(a + 1, b + 1)
                    if k % CHIP == 0 and k % BOOK != 0)
        label = " ".join(p for p in (f"+{chips} chips" if chips else "",
                                     "book " + ",".join(books) if books else "")
                         if p) or "-"
        deltas = " ".join(f"{pts[n][b] / pts[n][a]:>9.2f}x" for n in names)
        print(f"{a:>3}->{b:<4} {label:>18} {deltas}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_fig5e_hashtable_full.json"
    out = sys.argv[2] if len(sys.argv) > 2 else "results/fig5e_full.svg"
    bench, series = load(src)
    print(f"{bench}: throughput ratio across topology boundaries "
          "(global-lock drops at book steps; elision collapses crossing books)\n")
    boundary_table(series)
    print(f"\nwrote {svg(bench, series, out)}")


if __name__ == "__main__":
    main()
