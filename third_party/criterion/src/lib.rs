//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `Bencher` / `BenchmarkGroup` / `BenchmarkId`
//! API surface plus the `criterion_group!` / `criterion_main!` macros, with
//! a simple wall-clock measurement loop (short warm-up, then timed batches,
//! median-of-samples ns/iter reporting). No statistics machinery, HTML
//! reports, or baseline storage — results are printed to stdout only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Runs one benchmark's closure in timed batches.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then time batches and record
    /// per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least 10 iterations or 5 ms, whichever is longer.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 || warm_start.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters > 1_000_000 {
                break;
            }
        }
        // Pick a batch size that takes roughly 2 ms.
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((2e6 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        // Collect samples until ~60 ms elapse or 30 samples exist.
        let run_start = Instant::now();
        self.samples.clear();
        while self.samples.len() < 30 && run_start.elapsed() < Duration::from_millis(60) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return f64::NAN;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    let ns = b.median_ns();
    let formatted = if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    };
    println!("{label:<40} time: [{formatted}]");
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with `input`, labeled `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f`, labeled `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Finish the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with `criterion_main!`-generated code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Prevent the optimizer from discarding `value` (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundle benchmark functions into a group runner callable from
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main()` running the given groups. Ignores harness CLI arguments
/// (`--bench`, filters) passed by cargo.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness-less bench binaries with `--test`;
            // match real benchmark harness behavior by running nothing then.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(!b.samples.is_empty());
        assert!(b.median_ns().is_finite());
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
