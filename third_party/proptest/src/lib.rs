//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the ztm workspace uses —
//! `proptest!`, `prop_assert*`, `prop_oneof!`, `Strategy`/`prop_map`,
//! `any`, `Just`, `prop::collection::vec`, `prop::array::uniform16`,
//! `prop::sample::select`, `prop::option::of`, and integer-range
//! strategies — with a deterministic per-test RNG and **no shrinking**:
//! a failing case panics with the regular assertion message. Inputs are
//! reproducible because each test's RNG is seeded from the test's path.

pub mod test_runner {
    /// Run configuration, constructible with functional-update syntax:
    /// `ProptestConfig { cases: 12, ..ProptestConfig::default() }`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; this stand-in runs everything in
            // the debug profile under `cargo test`, so trade volume for speed.
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator used to produce test inputs (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary label (e.g. the test's module path), so the
        /// same test sees the same inputs on every run.
        pub fn for_test(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::seed_from_u64(h)
        }

        /// Seed via splitmix64 expansion.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as u128).wrapping_add(draw) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as u128).wrapping_add(draw) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        };
    }

    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias ~1/8 of draws toward boundary values, which is
                    // where integer bugs live; the rest are uniform bits.
                    if rng.next_u64() & 7 == 0 {
                        const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MIN];
                        EDGES[rng.below(4) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `prop::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection-size specification.
    pub trait SizeBounds {
        /// Lower bound and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::array` — strategies for fixed-size arrays.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[T; N]` from a per-element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// 16-element array strategy (GR files are 16 registers).
    pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
        UniformArray(element)
    }

    /// General fixed-size array strategy.
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray(element)
    }
}

/// `prop::sample` — strategies that pick from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Pick uniformly from `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// `prop::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` three times in four, else `None`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy around `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a test file needs: `use proptest::prelude::*;`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `pat in strategy` argument is drawn fresh per
/// case; the body runs `config.cases` times with deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                { $body }
            }
        }
    )*};
}

/// Like `assert!`, usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!`, usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Like `assert_ne!`, usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec::Vec::from([
            $( $crate::strategy::boxed($arm) ),+
        ]))
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..6),
            o in prop::option::of(0u64..10),
            arr in prop::array::uniform16(any::<u64>()),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            mixed in prop_oneof![Just(0u32), (1u32..5).prop_map(|x| x * 10)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            if let Some(x) = o { prop_assert!(x < 10); }
            prop_assert_eq!(arr.len(), 16);
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(mixed == 0 || (10..50).contains(&mixed));
        }
    }
}
