//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The ztm workspace only needs a small, fully deterministic slice of the
//! real `rand` API: `SeedableRng::seed_from_u64`, `rngs::SmallRng`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`. This crate
//! implements exactly that slice with a xoshiro256++ generator seeded via
//! splitmix64, so builds work without network access and every run is
//! reproducible from the seed alone.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: Sized + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as u128;
                ((low as u128).wrapping_add(draw)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full 128-bit wrap: the whole domain is valid.
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                ((low as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(numerator <= denominator, "gen_ratio numerator out of range");
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }

    /// The standard generator; identical to [`SmallRng`] in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
            let z = rng.gen_range(-3i16..=3);
            assert!((-3..=3).contains(&z));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
