//! Cycle-for-cycle determinism regressions for the event-heap scheduler.
//!
//! The two digests below are the ones committed in `results/BENCH_*.json`
//! when the simulator still used the per-step linear scan over all cores.
//! The heap-based scheduler (and every bookkeeping optimization since) must
//! reproduce them bit-for-bit: any scheduling or coherence divergence —
//! a different CPU picked on a clock tie, a stale heap entry acted on, a
//! missed quiesce clock bump — lands here before it lands in a figure.

use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

/// `results/BENCH_E1_uncontended.json`: TBEGIN, 1 CPU, pool 1, 400 ops
/// (the default-mode op count of the `fig_uncontended` binary).
const E1_DIGEST: u64 = 0xb6c503adfc7f7c55;

/// `results/BENCH_fig5e_hashtable.json`: lock-elided hashtable, 6 CPUs,
/// 1024 keys, 150 ops/CPU (the quick-mode traced point of `fig5e`).
const FIG5E_DIGEST: u64 = 0x6a19de9389368382;

#[test]
fn e1_trace_digest_matches_the_committed_baseline() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::Tbegin, 42);
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    wl.run(&mut sys, 400);
    assert_eq!(recorder.lock().unwrap().digest(), E1_DIGEST);
}

#[test]
fn fig5e_trace_digest_matches_the_committed_baseline() {
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, 150);
    assert_eq!(recorder.lock().unwrap().digest(), FIG5E_DIGEST);
}

/// The digest-only sink (no ring, no metrics, no event materialization)
/// must reproduce both committed digests bit-for-bit: it folds the same
/// byte stream as the recorder, only cheaper.
#[test]
fn e1_digest_matches_through_the_digest_only_sink() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::Tbegin, 42);
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    let (tracer, sink) = Tracer::digest_only();
    sys.set_tracer(tracer);
    wl.run(&mut sys, 400);
    assert_eq!(sink.digest(), E1_DIGEST);
    assert!(sink.events() > 0);
}

#[test]
fn fig5e_digest_matches_through_the_digest_only_sink() {
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    let (tracer, sink) = Tracer::digest_only();
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, 150);
    assert_eq!(sink.digest(), FIG5E_DIGEST);
    assert!(sink.events() > 0);
}

/// Broadcast-stop quiesce (§III.E) under the heap scheduler: the quiescing
/// core is scheduled *outside* the heap while every other core's entry goes
/// stale, and `release_quiesce` re-enters them with bumped clocks. The
/// adversarial cross-holding kernel from the E4 ablation reliably escalates
/// to the broadcast stage; two identically seeded runs must agree exactly.
#[test]
fn quiesce_under_heap_scheduling_is_exercised_and_deterministic() {
    let run = || {
        let mut sys = System::new(SystemConfig::with_cpus(16).seed(42));
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        let wl = PoolWorkload::new(PoolLayout::new(8, 2), SyncMethod::Tbeginc, 42);
        let rep = wl.run(&mut sys, 80);
        let digest = recorder.lock().unwrap().digest();
        (
            rep.system.tx.broadcast_stops,
            rep.committed_ops(),
            rep.system.steps,
            digest,
        )
    };
    let a = run();
    assert!(a.0 > 0, "kernel must escalate to broadcast-stop: {a:?}");
    assert!(a.1 > 0, "every CPU must finish its ops: {a:?}");
    assert_eq!(a, run());
}

/// Sharded execution (`ZTM_SIM_THREADS` > 1) must leave every committed
/// digest untouched. The single-shard baselines above route through the
/// serial scheduler even when threads are requested (nothing to shard);
/// this constant pins a *two-chip* (12-CPU) elided-hashtable run that
/// exercises the round scheduler for real. Asserted for 1, 2, and 4 host
/// threads through both the recording and the digest-only sinks.
const SHARDED_HT12_DIGEST: u64 = 0xc79e7c937476240f;

#[test]
fn sharded_hashtable_digest_matches_the_pinned_baseline() {
    use ztm::workloads::hashtable::{HashTable, TableMethod};
    for threads in [1usize, 2, 4] {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(42));
        sys.set_sim_threads(threads);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, 100);
        assert_eq!(
            recorder.lock().unwrap().digest(),
            SHARDED_HT12_DIGEST,
            "{threads} host threads"
        );
    }
    // The digest-only sink folds the identical byte stream.
    for threads in [2usize, 4] {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(42));
        sys.set_sim_threads(threads);
        let (tracer, sink) = Tracer::digest_only();
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        t.run(&mut sys, 100);
        assert_eq!(sink.digest(), SHARDED_HT12_DIGEST, "{threads} host threads");
    }
}

/// The committed single-shard baselines must stay pinned even when host
/// threads are requested: 1 and 6 CPUs are one shard, so the run routes
/// through the serial scheduler untouched.
#[test]
fn committed_digests_hold_when_sim_threads_are_requested() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::Tbegin, 42);
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    sys.set_sim_threads(4);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    wl.run(&mut sys, 400);
    assert_eq!(recorder.lock().unwrap().digest(), E1_DIGEST);

    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    sys.set_sim_threads(4);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, 150);
    assert_eq!(recorder.lock().unwrap().digest(), FIG5E_DIGEST);
}
