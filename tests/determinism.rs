//! Cycle-for-cycle determinism regressions for the event-heap scheduler.
//!
//! The two digests below are the ones committed in `results/BENCH_*.json`
//! when the simulator still used the per-step linear scan over all cores.
//! The heap-based scheduler (and every bookkeeping optimization since) must
//! reproduce them bit-for-bit: any scheduling or coherence divergence —
//! a different CPU picked on a clock tie, a stale heap entry acted on, a
//! missed quiesce clock bump — lands here before it lands in a figure.

use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

/// `results/BENCH_E1_uncontended.json`: TBEGIN, 1 CPU, pool 1, 400 ops
/// (the default-mode op count of the `fig_uncontended` binary).
const E1_DIGEST: u64 = 0xb6c503adfc7f7c55;

/// `results/BENCH_fig5e_hashtable.json`: lock-elided hashtable, 6 CPUs,
/// 1024 keys, 150 ops/CPU (the quick-mode traced point of `fig5e`).
const FIG5E_DIGEST: u64 = 0x6a19de9389368382;

#[test]
fn e1_trace_digest_matches_the_committed_baseline() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::Tbegin, 42);
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    wl.run(&mut sys, 400);
    assert_eq!(recorder.borrow().digest(), E1_DIGEST);
}

#[test]
fn fig5e_trace_digest_matches_the_committed_baseline() {
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, 150);
    assert_eq!(recorder.borrow().digest(), FIG5E_DIGEST);
}

/// The digest-only sink (no ring, no metrics, no event materialization)
/// must reproduce both committed digests bit-for-bit: it folds the same
/// byte stream as the recorder, only cheaper.
#[test]
fn e1_digest_matches_through_the_digest_only_sink() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::Tbegin, 42);
    let mut sys = System::new(SystemConfig::with_cpus(1).seed(42));
    let (tracer, sink) = Tracer::digest_only();
    sys.set_tracer(tracer);
    wl.run(&mut sys, 400);
    assert_eq!(sink.digest(), E1_DIGEST);
    assert!(sink.events() > 0);
}

#[test]
fn fig5e_digest_matches_through_the_digest_only_sink() {
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    let (tracer, sink) = Tracer::digest_only();
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    t.run(&mut sys, 150);
    assert_eq!(sink.digest(), FIG5E_DIGEST);
    assert!(sink.events() > 0);
}

/// Broadcast-stop quiesce (§III.E) under the heap scheduler: the quiescing
/// core is scheduled *outside* the heap while every other core's entry goes
/// stale, and `release_quiesce` re-enters them with bumped clocks. The
/// adversarial cross-holding kernel from the E4 ablation reliably escalates
/// to the broadcast stage; two identically seeded runs must agree exactly.
#[test]
fn quiesce_under_heap_scheduling_is_exercised_and_deterministic() {
    let run = || {
        let mut sys = System::new(SystemConfig::with_cpus(16).seed(42));
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        let wl = PoolWorkload::new(PoolLayout::new(8, 2), SyncMethod::Tbeginc, 42);
        let rep = wl.run(&mut sys, 80);
        let digest = recorder.borrow().digest();
        (
            rep.system.tx.broadcast_stops,
            rep.committed_ops(),
            rep.system.steps,
            digest,
        )
    };
    let a = run();
    assert!(a.0 > 0, "kernel must escalate to broadcast-stop: {a:?}");
    assert!(a.1 > 0, "every CPU must finish its ops: {a:?}");
    assert_eq!(a, run());
}
