//! Data-structure consistency of the §IV workloads under adversity: random
//! forced aborts, timer interruptions, and contention.

use ztm::core::DiagnosticControl;
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};
use ztm::workloads::hashtable::{HashTable, TableMethod};
use ztm::workloads::queue::{ConcurrentQueue, QueueMethod};
use ztm::workloads::rwlock::{ReadMethod, ReadWorkload};

#[test]
fn elided_hashtable_has_no_duplicate_keys_under_contention() {
    let t = HashTable::new(128, 256, 50, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6));
    t.populate(&mut sys, &(0..64).collect::<Vec<_>>());
    let rep = t.run(&mut sys, 60);
    assert_eq!(rep.committed_ops(), 360);
    // With a 256-key space and 50% puts, concurrent inserts of the same key
    // are common — elision must serialize them.
    for key in 0..256u64 {
        let mut count = 0;
        let b = key & 127;
        let mut node = sys.mem().load_u64(Address::new(0x1000_0000 + b * 8));
        while node != 0 {
            if sys.mem().load_u64(Address::new(node)) == key {
                count += 1;
            }
            node = sys.mem().load_u64(Address::new(node + 16));
        }
        assert!(count <= 1, "key {key} appears {count} times");
    }
}

#[test]
fn elided_hashtable_survives_random_forced_aborts() {
    let mut cfg = SystemConfig::with_cpus(4);
    cfg.engine.diagnostic = DiagnosticControl::Random { denominator: 10 };
    let t = HashTable::new(128, 512, 30, TableMethod::Elision);
    let mut sys = System::new(cfg);
    t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
    let rep = t.run(&mut sys, 50);
    assert_eq!(rep.committed_ops(), 200);
    assert!(rep.system.tx.aborts > 0);
    let len = t.len(&sys);
    assert!((128..=128 + 200).contains(&len));
}

#[test]
fn constrained_queue_under_timer_interruptions() {
    // Asynchronous interruptions abort transactions (§II.A); the millicode
    // retry counter resets on OS interruptions (§III.E). The queue must
    // still complete and stay consistent.
    let mut cfg = SystemConfig::with_cpus(4);
    cfg.timer_interval = Some(5_000);
    let q = ConcurrentQueue::new(QueueMethod::Tbeginc);
    let mut sys = System::new(cfg);
    q.seed(&mut sys, 32);
    let rep = q.run(&mut sys, 50);
    assert_eq!(rep.committed_ops(), 200);
    assert_eq!(q.len(&sys), 32);
    assert!(
        rep.system.tx.aborts_by_code.contains_key(&2),
        "some aborts from the timer: {:?}",
        rep.system.tx.aborts_by_code
    );
}

#[test]
fn queue_fifo_order_is_preserved_single_consumer() {
    // One producer-consumer CPU: values must come out in insertion order.
    let q = ConcurrentQueue::new(QueueMethod::Tbeginc);
    let mut sys = System::new(SystemConfig::with_cpus(1));
    q.seed(&mut sys, 3);
    let rep = q.run(&mut sys, 10);
    assert_eq!(rep.committed_ops(), 10);
    assert_eq!(q.len(&sys), 3);
}

#[test]
fn rwlock_read_count_balances_under_contention() {
    let wl = ReadWorkload::new(128, ReadMethod::RwLock);
    let mut sys = System::new(SystemConfig::with_cpus(10));
    let rep = wl.run(&mut sys, 40);
    assert_eq!(rep.committed_ops(), 400);
    assert_eq!(
        sys.mem().load_u64(Address::new(wl.rw_word)),
        0,
        "reader count must return to zero"
    );
}

#[test]
fn hashtable_lock_and_elision_agree_on_lookups() {
    // Populate identically, run the same op mix under both methods with the
    // same seed, then check that every pre-populated key is still present
    // with a sane value.
    for method in [TableMethod::GlobalLock, TableMethod::Elision] {
        let t = HashTable::new(256, 512, 25, method);
        let mut sys = System::new(SystemConfig::with_cpus(3).seed(77));
        let keys: Vec<u64> = (0..200).collect();
        t.populate(&mut sys, &keys);
        t.run(&mut sys, 40);
        for &k in &keys {
            let v = t.lookup(&sys, k).expect("pre-populated key present");
            assert!(
                v == k * 10 || v == k,
                "value is either the original or an update: key {k} value {v}"
            );
        }
    }
}
