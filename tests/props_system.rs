//! System-level property test: transactional atomicity holds for *random*
//! system shapes and seeds — effectively fuzzing the whole stack (ISA →
//! engine → cache → fabric) against its one unforgiving invariant.

use proptest::prelude::*;
use ztm::sim::{System, SystemConfig};
use ztm::workloads::bank::{Bank, BankMethod};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full multi-CPU simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn pool_updates_are_atomic_for_random_shapes(
        cpus in 2usize..10,
        pool in 1u64..32,
        vars in 1usize..5,
        seed in any::<u64>(),
        constrained in any::<bool>(),
        spec in any::<bool>(),
        occupancy in 0u64..20,
    ) {
        let method = if constrained { SyncMethod::Tbeginc } else { SyncMethod::Tbegin };
        let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, seed);
        let mut cfg = SystemConfig::with_cpus(cpus).seed(seed);
        cfg.speculative_prefetch = spec;
        cfg.fabric_occupancy = occupancy;
        let mut sys = System::new(cfg);
        let ops = 15;
        let rep = wl.run(&mut sys, ops);
        prop_assert_eq!(rep.committed_ops(), cpus as u64 * ops);
        // With a pool of 1 the paper's methodology places the extra
        // variables on consecutive *non-pool* lines, so only one counted
        // increment happens per op.
        let per_op = if pool == 1 { 1 } else { vars as u64 };
        prop_assert_eq!(wl.pool_sum(&sys), cpus as u64 * ops * per_op);
    }

    #[test]
    fn money_is_conserved_for_random_banks(
        cpus in 2usize..8,
        accounts in 1u64..24,
        seed in any::<u64>(),
        method_sel in 0u8..3,
    ) {
        let method = match method_sel {
            0 => BankMethod::Lock,
            1 => BankMethod::Tbeginc,
            _ => BankMethod::Tbegin,
        };
        let bank = Bank::new(accounts, method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(seed));
        bank.open(&mut sys, 10_000);
        bank.run(&mut sys, 12);
        prop_assert_eq!(bank.total(&sys), accounts * 10_000);
    }
}
