//! Host-parallel sharded execution must be *invisible*: for any
//! `ZTM_SIM_THREADS` value the sharded round scheduler has to reproduce the
//! serial event-heap scheduler step for step — same `(clock, cpu, event,
//! cycles)` sequence, same aggregate report, same trace digests. These tests
//! run the same seeded workloads through both engines and diff everything
//! the simulator can observe about itself.
//!
//! Thread counts above the shard count are legal (shards are the
//! parallelism bound); `set_sim_threads(1)` routes through the serial
//! scheduler untouched.

use proptest::prelude::*;
use ztm::sim::{StepLogEntry, System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::bank::{Bank, BankMethod};
use ztm::workloads::hashtable::{HashTable, TableMethod};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

/// The deterministic portion of a report. The `sharding` stats measure how
/// the *host* scheduled the run (rounds, chains, rollbacks) and legitimately
/// vary with thread count and window — every simulated outcome must not, so
/// differential tests zero them and diff everything else.
fn det(sys: &System) -> String {
    let mut r = sys.report();
    r.sharding = Default::default();
    format!("{r:?}")
}

/// Runs the lock-elided hashtable on `cpus` CPUs with the step log armed
/// and returns everything observable: the full step log and the report.
fn hashtable_run(cpus: usize, threads: usize) -> (Vec<StepLogEntry>, String) {
    let t = HashTable::new(256, 1024, 30, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
    sys.set_sim_threads(threads);
    sys.set_shard_round_min(1); // force the scoped-thread dispatch path
    sys.set_step_log(true);
    t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
    t.run(&mut sys, 60);
    if threads > 1 {
        // The equivalence must not hold vacuously: a healthy share of the
        // steps has to execute inside parallel shard-local rounds.
        assert!(
            sys.sharded_local_steps() * 2 > sys.report().steps,
            "most steps should be shard-local: {} of {}",
            sys.sharded_local_steps(),
            sys.report().steps
        );
    }
    let report = det(&sys);
    (sys.take_step_log(), report)
}

/// 12 CPUs = two chips of one book: the plan shards per chip. The hashtable
/// under elision aborts, retries, takes the fallback lock — a dense mix of
/// local steps, fabric fetches, XIs, and abort processing.
#[test]
fn hashtable_step_log_is_identical_across_thread_counts() {
    let serial = hashtable_run(12, 1);
    assert!(!serial.0.is_empty(), "step log must record the run");
    for threads in [2, 4, 7] {
        let sharded = hashtable_run(12, threads);
        assert_eq!(serial.0.len(), sharded.0.len(), "step count diverged");
        for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
            assert_eq!(a, b, "first divergence at step {at} ({threads} threads)");
        }
        assert_eq!(serial.1, sharded.1, "report diverged ({threads} threads)");
    }
}

/// 48 CPUs = two books: the plan shards per MCM, crossing the most
/// expensive coherence boundary in the machine.
#[test]
fn bank_step_log_is_identical_across_books() {
    let run = |threads: usize| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(48).seed(7));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        sys.set_step_log(true);
        bank.run(&mut sys, 25);
        let report = det(&sys);
        (sys.take_step_log(), report)
    };
    let serial = run(1);
    let sharded = run(2);
    assert!(!serial.0.is_empty());
    assert_eq!(serial.0.len(), sharded.0.len(), "step count diverged");
    for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
        assert_eq!(a, b, "first divergence at step {at}");
    }
    assert_eq!(serial.1, sharded.1, "report diverged");
}

/// Constrained transactions cross-holding cache lines escalate to the
/// millicode broadcast-stop (§III.E) — the sharded driver must fall back to
/// coordinator-serial steps for the whole quiesce window and still match.
#[test]
fn quiesce_escalation_matches_serial_exactly() {
    let run = |threads: usize| {
        let wl = PoolWorkload::new(PoolLayout::new(8, 2), SyncMethod::Tbeginc, 42);
        let mut sys = System::new(SystemConfig::with_cpus(16).seed(42));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        sys.set_step_log(true);
        let rep = wl.run(&mut sys, 40);
        let report = det(&sys);
        (sys.take_step_log(), rep.system.tx.broadcast_stops, report)
    };
    let serial = run(1);
    assert!(
        serial.1 > 0,
        "kernel must escalate to broadcast-stop to make this test bite"
    );
    let sharded = run(4);
    assert_eq!(serial.0.len(), sharded.0.len(), "step count diverged");
    for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
        assert_eq!(a, b, "first divergence at step {at}");
    }
    assert_eq!(serial.2, sharded.2, "report diverged");
}

/// The committed trace digest — every event, every field, every emission
/// order — must be byte-identical for any host thread count, through both
/// the recording sink and the digest-only sink.
#[test]
fn trace_digests_are_identical_across_thread_counts() {
    let recorded = |threads: usize| {
        let t = HashTable::new(256, 1024, 30, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(42));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        t.run(&mut sys, 60);
        let r = recorder.lock().unwrap();
        (r.digest(), r.metrics().events)
    };
    let digest_only = |threads: usize| {
        let t = HashTable::new(256, 1024, 30, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(42));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        let (tracer, sink) = Tracer::digest_only();
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        t.run(&mut sys, 60);
        (sink.digest(), sink.events())
    };
    let base = recorded(1);
    assert!(base.1 > 0, "the workload must emit events");
    assert_eq!(base, recorded(2));
    assert_eq!(base, recorded(4));
    let d = digest_only(1);
    assert_eq!(d.0, base.0, "both sinks fold the same byte stream");
    assert_eq!(d, digest_only(2));
    assert_eq!(d, digest_only(4));
}

/// Partial-run entry and exit: `step_many` with small budgets forces the
/// sharded driver to truncate rounds mid-flight and rebuild the serial
/// scheduler's heap on every boundary; interleaving must not disturb the
/// step sequence.
#[test]
fn step_budget_boundaries_do_not_disturb_the_sequence() {
    let chunked = |threads: usize, chunk: u64| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
        sys.set_sim_threads(threads);
        sys.set_step_log(true);
        sys.load_program_all(&bank.program(25));
        let mut total = 0u64;
        loop {
            let n = sys.step_many(chunk);
            if n == 0 {
                break;
            }
            total += n;
        }
        let report = det(&sys);
        (total, sys.take_step_log(), report)
    };
    let serial = chunked(1, 1_000_000_000);
    for (threads, chunk) in [(2, 997), (4, 1), (4, 64)] {
        let sharded = chunked(threads, chunk);
        assert_eq!(serial.0, sharded.0, "{threads} threads, chunk {chunk}");
        assert_eq!(serial.1, sharded.1, "{threads} threads, chunk {chunk}");
        assert_eq!(serial.2, sharded.2, "{threads} threads, chunk {chunk}");
    }
}

/// Horizon boundaries: `run_for_cycles` must stop the sharded driver at
/// exactly the serial rule (no step whose start clock reaches the horizon
/// executes) — admission and in-shard run-ahead both stop at the `(hz, 0)`
/// key ceiling, no matter where the chunk boundaries land.
#[test]
fn cycle_horizons_do_not_disturb_the_sequence() {
    // Drives the run through `run_for_cycles` horizons `chunk` cycles
    // apart until `upto` covers the whole run, then collects the tail.
    let chunked = |threads: usize, chunk: u64, upto: u64| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        sys.set_step_log(true);
        sys.load_program_all(&bank.program(25));
        let mut horizon = chunk;
        while horizon <= upto {
            sys.run_for_cycles(horizon);
            horizon += chunk;
        }
        sys.run_until_halt(10_000_000);
        let cycles = sys.report().elapsed_cycles;
        let report = det(&sys);
        (sys.take_step_log(), report, cycles)
    };
    let serial = chunked(1, u64::MAX, 0);
    assert!(!serial.0.is_empty());
    for (threads, chunk) in [(2, 1009), (4, 113)] {
        let sharded = chunked(threads, chunk, serial.2 + chunk);
        assert_eq!(serial.0.len(), sharded.0.len(), "{threads} threads");
        for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
            assert_eq!(a, b, "first divergence at step {at} (chunk {chunk})");
        }
        assert_eq!(serial.1, sharded.1, "report diverged ({threads} threads)");
    }
}

/// `ZTM_SHARD_WINDOW=1` (here via the setter) pins the conservative
/// provable-slack admission of the pre-epoch driver: no epochs, no
/// journals, zero rollbacks — and still the exact serial stream. The wide
/// default window must agree with both on everything deterministic.
#[test]
fn window_one_reproduces_conservative_admission() {
    let run = |threads: usize, window: Option<usize>| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1);
        sys.set_step_log(true);
        if let Some(w) = window {
            sys.set_shard_window(w);
        }
        bank.run(&mut sys, 25);
        let sharding = sys.report().sharding;
        let report = det(&sys);
        (sys.take_step_log(), report, sharding)
    };
    let serial = run(1, None);
    let conservative = run(2, Some(1));
    let wide = run(2, None);
    assert_eq!(
        conservative.2.rollbacks, 0,
        "window 1 admits only provably-final steps"
    );
    assert_eq!(conservative.2.replayed, 0);
    for other in [&conservative, &wide] {
        assert_eq!(serial.0.len(), other.0.len(), "step count diverged");
        for (at, (a, b)) in serial.0.iter().zip(&other.0).enumerate() {
            assert_eq!(a, b, "first divergence at step {at}");
        }
        assert_eq!(serial.1, other.1, "report diverged");
    }
    // The wide window must actually widen rounds, or the speculation is
    // vacuous on this contended workload.
    assert!(
        wide.2.mean_round_steps() > conservative.2.mean_round_steps(),
        "wide window should beat conservative rounds: {:?} vs {:?}",
        wide.2,
        conservative.2
    );
}

/// The rollback path must actually run: on a contended bank workload the
/// wide window speculates past global steps (XI-carrying fetches, abort
/// processing) and unwinds. The run is deterministic — the round schedule
/// depends only on the workload and thread count, not host timing — so the
/// counters are stable, and the simulated outcome still matches serial
/// exactly (checked against `bank_step_log_is_identical_across_books` /
/// `window_one_reproduces_conservative_admission` on the same workloads).
#[test]
fn speculation_rollbacks_fire_and_are_invisible() {
    let bank = Bank::new(64, BankMethod::Tbegin);
    let mut serial = System::new(SystemConfig::with_cpus(12).seed(9));
    serial.set_step_log(true);
    bank.run(&mut serial, 25);
    let serial_report = det(&serial);
    let serial_log = serial.take_step_log();

    let bank = Bank::new(64, BankMethod::Tbegin);
    let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
    sys.set_sim_threads(2);
    sys.set_shard_round_min(1);
    sys.set_step_log(true);
    bank.run(&mut sys, 25);
    let s = sys.report().sharding;
    assert!(
        s.rollbacks >= 1,
        "the contended bank must provoke at least one rollback: {s:?}"
    );
    assert!(
        s.replayed >= 1,
        "at least one rollback must land mid-epoch and replay a prefix: {s:?}"
    );
    assert!(s.chain_max >= 2, "run-ahead chains must form: {s:?}");
    assert_eq!(det(&sys), serial_report, "rollbacks leaked into the report");
    assert_eq!(
        serial_log,
        sys.take_step_log(),
        "rollbacks leaked into the step log"
    );
}

/// Contention-adaptive windows (the default) versus the fixed-window
/// regime (`ZTM_SHARD_ADAPT=0`, here via the setter — env vars race across
/// parallel tests): adaptation may only move *host* scheduling (round
/// sizes, rollback counts), never a simulated byte. Step logs, reports,
/// and the committed trace digest must be identical to each other and to
/// the serial scheduler.
#[test]
fn adaptive_and_fixed_windows_are_byte_identical() {
    let run = |threads: usize, adapt: bool| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        sys.set_shard_adapt(adapt);
        sys.set_step_log(true);
        let (tracer, sink) = Tracer::digest_only();
        sys.set_tracer(tracer);
        bank.run(&mut sys, 25);
        let sharding = sys.report().sharding;
        let report = det(&sys);
        (sys.take_step_log(), report, sink.digest(), sharding)
    };
    let serial = run(1, true);
    let adaptive = run(2, true);
    let fixed = run(2, false);
    // Non-vacuity: the adaptive run must actually adapt (window stats are
    // only reported while the controller is live) and the fixed run must
    // actually not.
    assert!(
        adaptive.3.window_cpus > 0,
        "adaptation should be live on the wide default window: {:?}",
        adaptive.3
    );
    assert_eq!(fixed.3.window_cpus, 0, "fixed regime reports no windows");
    assert!(
        adaptive.3.window_min < adaptive.3.window_max,
        "the contended bank should shrink some windows: {:?}",
        adaptive.3
    );
    for (name, other) in [("adaptive", &adaptive), ("fixed", &fixed)] {
        assert_eq!(serial.0.len(), other.0.len(), "{name}: step count diverged");
        for (at, (a, b)) in serial.0.iter().zip(&other.0).enumerate() {
            assert_eq!(a, b, "{name}: first divergence at step {at}");
        }
        assert_eq!(serial.1, other.1, "{name}: report diverged");
        assert_eq!(serial.2, other.2, "{name}: trace digest diverged");
    }
}

/// The controller state is a pure function of the deterministic
/// step/rollback history, so the *entire* sharding report — window
/// extrema, clamp census, per-cause rollback counts, round and chain
/// shapes — must be identical for any host thread count, not just the
/// simulated outcome.
#[test]
fn adaptation_state_is_identical_across_thread_counts() {
    let run = |threads: usize| {
        let bank = Bank::new(64, BankMethod::Tbegin);
        let mut sys = System::new(SystemConfig::with_cpus(48).seed(7));
        sys.set_sim_threads(threads);
        sys.set_shard_round_min(1); // force the scoped-thread dispatch path
        bank.run(&mut sys, 25);
        sys.report().sharding
    };
    let two = run(2);
    let four = run(4);
    assert!(
        two.rollbacks > 0,
        "the contended bank must roll back: {two:?}"
    );
    assert_eq!(
        two.rollbacks,
        two.rollbacks_tx + two.rollbacks_fabric + two.rollbacks_quiesce,
        "every rollback must carry a cause: {two:?}"
    );
    assert!(two.window_cpus > 0, "adaptation should be live: {two:?}");
    assert_eq!(two, four, "host thread count leaked into adaptation state");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs two full multi-CPU simulations
        .. ProptestConfig::default()
    })]

    /// Random system shapes and pool workloads: sharded execution replays
    /// the serial step sequence exactly. This fuzzes the classifier — any
    /// step it wrongly calls node-local either panics at a serialized
    /// resource or diverges from the serial log right here.
    #[test]
    fn sharded_matches_serial_for_random_shapes(
        cpus in 7usize..20,
        threads in 2usize..5,
        pool in 1u64..24,
        vars in 1usize..4,
        seed in any::<u64>(),
        constrained in any::<bool>(),
        spec in any::<bool>(),
        occupancy in 0u64..20,
    ) {
        let method = if constrained { SyncMethod::Tbeginc } else { SyncMethod::Tbegin };
        let run = |host_threads: usize| {
            let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, seed);
            let mut cfg = SystemConfig::with_cpus(cpus).seed(seed);
            cfg.speculative_prefetch = spec;
            cfg.fabric_occupancy = occupancy;
            let mut sys = System::new(cfg);
            sys.set_sim_threads(host_threads);
            sys.set_shard_round_min(1); // force the scoped-thread dispatch path
            sys.set_step_log(true);
            wl.run(&mut sys, 10);
            let report = det(&sys);
            (sys.take_step_log(), report)
        };
        let serial = run(1);
        let sharded = run(threads);
        prop_assert_eq!(serial.0.len(), sharded.0.len(), "step count diverged");
        for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
            prop_assert_eq!(a, b, "first divergence at step {} of {}", at, serial.0.len());
        }
        prop_assert_eq!(serial.1, sharded.1);
    }

    /// Shrunk cross-boundary latencies and explicit window widths: with
    /// `l4_hit`/`cross_mcm`/`memory` forced down to a handful of cycles,
    /// cross-shard effects land *inside* speculation windows constantly, so
    /// the resolve/rollback machinery — not latency slack — carries the
    /// equivalence. Windows wider than the latency bound are deliberately
    /// legal for the same reason.
    #[test]
    fn speculation_survives_shrunk_cross_boundary_latencies(
        cpus in 7usize..20,
        threads in 2usize..5,
        pool in 1u64..24,
        seed in any::<u64>(),
        l4 in 2u64..40,
        cross in 2u64..40,
        memory in 4u64..60,
        window in prop_oneof![Just(None), (1usize..96).prop_map(Some)],
        adapt in any::<bool>(),
    ) {
        let run = |host_threads: usize| {
            let wl = PoolWorkload::new(PoolLayout::new(pool, 2), SyncMethod::Tbegin, seed);
            let mut cfg = SystemConfig::with_cpus(cpus).seed(seed);
            cfg.latency.l4_hit = l4;
            cfg.latency.cross_mcm = cross;
            cfg.latency.memory = memory;
            let mut sys = System::new(cfg);
            sys.set_sim_threads(host_threads);
            sys.set_shard_round_min(1); // force the scoped-thread dispatch path
            sys.set_shard_adapt(adapt);
            sys.set_step_log(true);
            if let Some(w) = window {
                sys.set_shard_window(w);
            }
            wl.run(&mut sys, 10);
            let report = det(&sys);
            (sys.take_step_log(), report)
        };
        let serial = run(1);
        let sharded = run(threads);
        prop_assert_eq!(serial.0.len(), sharded.0.len(), "step count diverged");
        for (at, (a, b)) in serial.0.iter().zip(&sharded.0).enumerate() {
            prop_assert_eq!(a, b, "first divergence at step {} of {}", at, serial.0.len());
        }
        prop_assert_eq!(serial.1, sharded.1);
    }
}
