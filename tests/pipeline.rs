//! Differential and determinism tests for the in-order issue window
//! (`ztm-isa::pipeline`).
//!
//! The window is a timing overlay: functional execution stays exactly the
//! scalar interpreter's, only the clock at which each instruction issues
//! changes. Two properties pin it down:
//!
//! 1. At width 1 the pipelined path must be *byte-identical* to the scalar
//!    retirement stream — same CPU scheduled each step, same
//!    [`ztm::isa::StepOutcome`], same trace digest.
//! 2. At width 3 the timing changes, but deterministically: the quick-mode
//!    fig 5(e) traced point has a committed digest of its own, pinned here
//!    and diffed in CI via `results/BENCH_fig5e_hashtable_w3.json`.

use ztm::core::TbeginParams;
use ztm::isa::gr::*;
use ztm::isa::{Assembler, Instr, MemOperand, Program};
use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};

/// `results/BENCH_fig5e_hashtable_w3.json`: the fig 5(e) traced point
/// (lock-elided hashtable, 6 CPUs, 1024 keys, 150 ops/CPU) stepped through
/// the width-3 issue window.
const FIG5E_W3_DIGEST: u64 = 0x760659ee57ac921a;

/// A program exercising every interpreter path a well-formed workload can
/// reach: contended stores, an elision-shaped transaction with fallback,
/// CAS, branches, ALU, clock reads, and NTSTG (same kernel as the
/// predecode differential).
fn mixed_program() -> Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 250); // outer loop count
    a.label("loop");
    a.lg(R1, MemOperand::absolute(0x1000));
    a.aghi(R1, 1);
    a.stg(R1, MemOperand::absolute(0x1000));
    a.tbegin(TbeginParams::new());
    a.jnz("fallback");
    a.ltg(R2, MemOperand::absolute(0x2000)); // "lock" word, stays 0
    a.jnz("fallback");
    a.lg(R3, MemOperand::absolute(0x3000));
    a.aghi(R3, 3);
    a.stg(R3, MemOperand::absolute(0x3000));
    a.ntstg(R3, MemOperand::absolute(0x3800));
    a.etnd(R4);
    a.tend();
    a.j("joined");
    a.label("fallback");
    a.ppa(R0);
    a.delay(16);
    a.label("joined");
    a.lghi(R2, 0);
    a.lghi(R3, 1);
    a.csg(R2, R3, MemOperand::absolute(0x4000));
    a.stg(R2, MemOperand::absolute(0x4000)); // reset for the next round
    a.rdclk(R5);
    a.push(Instr::Xgr(R5, R5));
    a.sllg(R4, R6, 2);
    a.cgij_ge(R4, 0, "counted");
    a.label("counted");
    a.stckf(MemOperand::absolute(0x5000));
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().expect("mixed program assembles")
}

/// Builds a 4-CPU system running [`mixed_program`] with a recording tracer,
/// optionally routed through a width-1 issue window.
fn mixed_system(width1_window: bool) -> (System, std::sync::Arc<std::sync::Mutex<Recorder>>) {
    let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
    if width1_window {
        sys.set_issue_width(1);
    }
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    sys.load_program_all(&mixed_program());
    (sys, recorder)
}

/// The width-1 pipeline and the scalar interpreter must agree on every
/// single step: same CPU scheduled, same outcome (cycles, event,
/// broadcast-stop), and the same trace digest at the end.
#[test]
fn width_1_window_locksteps_with_the_scalar_interpreter() {
    let (mut piped, piped_rec) = mixed_system(true);
    let (mut scalar, scalar_rec) = mixed_system(false);
    let mut steps = 0u64;
    loop {
        let a = piped.step_one();
        let b = scalar.step_one();
        assert_eq!(a, b, "divergence at step {steps}");
        steps += 1;
        if a.is_none() {
            break;
        }
        assert!(steps < 2_000_000, "mixed program failed to halt");
    }
    assert!(
        steps > 10_000,
        "program too short to be a meaningful differential"
    );
    assert_eq!(
        piped_rec.lock().unwrap().digest(),
        scalar_rec.lock().unwrap().digest()
    );
}

/// Same check through a full workload driver (the lock-elided hashtable of
/// Fig 5(e)), where aborts, retries, and the fallback lock all fire.
#[test]
fn width_1_window_agrees_on_the_elision_hashtable() {
    let run = |width1_window: bool| {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
        if width1_window {
            sys.set_issue_width(1);
        }
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 60);
        let digest = recorder.lock().unwrap().digest();
        (rep.system.steps, rep.system.elapsed_cycles, digest)
    };
    assert_eq!(run(true), run(false));
}

/// The width-3 fig 5(e) quick traced point: deterministic, pinned to the
/// digest committed in `results/BENCH_fig5e_hashtable_w3.json`, and
/// genuinely faster than the scalar timing (overlap happened).
#[test]
fn fig5e_width_3_digest_matches_the_committed_baseline() {
    let run = || {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
        sys.set_issue_width(3);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 150);
        let digest = recorder.lock().unwrap().digest();
        (digest, rep.system.elapsed_cycles)
    };
    let (digest, w3_cycles) = run();
    assert_eq!(run().0, digest, "width-3 stepping must be deterministic");
    assert_eq!(digest, FIG5E_W3_DIGEST);

    // The same point at scalar timing takes longer: the window overlapped
    // real work, it didn't just relabel clocks.
    let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(42));
    t.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let rep = t.run(&mut sys, 150);
    assert!(
        w3_cycles < rep.system.elapsed_cycles,
        "width 3 ({w3_cycles}) must beat scalar ({})",
        rep.system.elapsed_cycles
    );
}
