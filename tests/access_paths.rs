//! Edge cases of the memory access paths on the full system: granule- and
//! line-boundary stores, alignment rules, and the store-forwarding paths.

use ztm::core::TbeginParams;
use ztm::isa::{gr::*, Assembler, CpuState, HaltReason, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};

fn run_one(a: &Assembler) -> System {
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.run_until_halt(1_000_000);
    sys
}

#[test]
fn store_straddling_a_half_line_commits_both_granules() {
    // A store at offset 124 covers bytes 124..132 — two 128-byte store-cache
    // granules. Both halves must commit.
    let base = 0x10_0000u64;
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("out");
    a.lghi(R1, -1); // 0xFFFF_FFFF_FFFF_FFFF
    a.stg(R1, MemOperand::absolute(base + 124));
    a.tend();
    a.label("out");
    a.halt();
    let sys = run_one(&a);
    assert_eq!(sys.mem().load_u64(Address::new(base + 124)), u64::MAX);
    // Bytes on either side untouched.
    assert_eq!(sys.mem().load_u64(Address::new(base + 116)), 0);
    assert_eq!(sys.mem().load_u64(Address::new(base + 132)), 0);
}

#[test]
fn store_straddling_a_half_line_rolls_back_both_granules() {
    let base = 0x11_0000u64;
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("out");
    a.lghi(R1, -1);
    a.stg(R1, MemOperand::absolute(base + 124));
    a.tabort(256);
    a.label("out");
    a.halt();
    let sys = run_one(&a);
    assert_eq!(sys.mem().load_u64(Address::new(base + 124)), 0);
}

#[test]
fn line_crossing_access_is_a_specification_exception() {
    // The simulated ISA rejects operands that cross a 256-byte line
    // (documented simplification); the OS terminates the program.
    let mut a = Assembler::new(0);
    a.lghi(R1, 1);
    a.stg(R1, MemOperand::absolute(0x10_0000 + 252));
    a.halt();
    let sys = run_one(&a);
    match &sys.core(0).state {
        CpuState::Halted(HaltReason::Terminated(msg)) => {
            assert!(msg.contains("specification"), "{msg}");
        }
        other => panic!("expected termination, got {other:?}"),
    }
}

#[test]
fn unaligned_ntstg_is_a_specification_exception() {
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("out");
    a.lghi(R1, 1);
    a.ntstg(R1, MemOperand::absolute(0x10_0004)); // not doubleword aligned
    a.tend();
    a.label("out");
    a.halt();
    let sys = run_one(&a);
    assert!(matches!(
        sys.core(0).state,
        CpuState::Halted(HaltReason::Terminated(_))
    ));
}

#[test]
fn store_forwarding_sees_partial_overlaps() {
    // Store 8 bytes, then load 8 bytes overlapping only half of them: the
    // load must merge forwarded bytes with committed memory.
    let base = 0x12_0000u64;
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("out");
    a.lghi(R1, 0x1111);
    a.stg(R1, MemOperand::absolute(base)); // bytes 0..8 = 00..00 11 11
    a.lg(R2, MemOperand::absolute(base + 4)); // bytes 4..12
    a.stg(R2, MemOperand::absolute(base + 64)); // witness
    a.tend();
    a.label("out");
    a.halt();
    let sys = run_one(&a);
    // bytes 4..8 = 00 00 11 11 (from the store), bytes 8..12 = 0.
    assert_eq!(
        sys.mem().load_u64(Address::new(base + 64)),
        0x0000_1111_0000_0000
    );
}

#[test]
fn indexed_addressing_computes_base_plus_index_plus_disp() {
    let mut a = Assembler::new(0);
    a.lghi(R5, 0x10_0000);
    a.lghi(R6, 0x100);
    a.lghi(R1, 42);
    a.stg(R1, MemOperand::indexed(R5, R6, 8));
    a.halt();
    let sys = run_one(&a);
    assert_eq!(sys.mem().load_u64(Address::new(0x10_0108)), 42);
}

#[test]
fn la_loads_effective_address_without_touching_memory() {
    let mut a = Assembler::new(0);
    a.lghi(R5, 0x20_0000);
    a.la(R2, MemOperand::based(R5, 24));
    a.halt();
    let sys = run_one(&a);
    assert_eq!(sys.core(0).gr(R2), 0x20_0018);
    assert_eq!(sys.mem().resident_lines(), 0, "LA performs no access");
}

#[test]
fn csg_retries_observe_intervening_stores() {
    // Two CPUs CAS-incrementing the same word via the CSG retry idiom:
    // every increment must land exactly once.
    let word = 0x30_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(R6, 100);
    a.label("loop");
    a.lg(R2, MemOperand::absolute(word));
    a.label("cas");
    a.lgr(R3, R2);
    a.aghi(R3, 1);
    a.csg(R2, R3, MemOperand::absolute(word));
    a.jnz("cas"); // CSG reloaded R2 on failure
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(4));
    sys.load_program_all(&p);
    sys.run_until_halt(10_000_000);
    assert_eq!(sys.mem().load_u64(Address::new(word)), 400);
}
