//! Differential tests for the predecoded interpreter (`ztm-isa::decoded`).
//!
//! The predecode pass lowers a `Program` once into a flat table of
//! fixed-size decoded records, and the hot interpreter dispatches on those
//! instead of walking the `Instr` enum. Both interpreters stay in the tree
//! (`System::set_legacy_interpreter`); these tests pin them to each other:
//! identical per-step outcomes, identical trace digests, and an exact
//! decode/reify round-trip for arbitrary assemblable instructions.

use proptest::prelude::*;
use ztm::core::{GrSaveMask, Pifc, TbeginParams};
use ztm::isa::gr::*;
use ztm::isa::{Assembler, CmpCond, Instr, MemOperand, Program, Reg, RegOrImm};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};

/// A program exercising every interpreter path that a well-formed workload
/// can reach: contended plain stores, lock-elision-shaped transactions with
/// an abort fallback, compare-and-swap, branches, ALU, clocks, and NTSTG.
fn mixed_program() -> Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 250); // outer loop count
    a.label("loop");
    // Contended read-modify-write on a shared line (XI traffic, stalls).
    a.lg(R1, MemOperand::absolute(0x1000));
    a.aghi(R1, 1);
    a.stg(R1, MemOperand::absolute(0x1000));
    // A transaction in the Figure 1 elision shape.
    a.tbegin(TbeginParams::new());
    a.jnz("fallback");
    a.ltg(R2, MemOperand::absolute(0x2000)); // "lock" word, stays 0
    a.jnz("fallback");
    a.lg(R3, MemOperand::absolute(0x3000));
    a.aghi(R3, 3);
    a.stg(R3, MemOperand::absolute(0x3000));
    a.ntstg(R3, MemOperand::absolute(0x3800));
    a.etnd(R4);
    a.tend();
    a.j("joined");
    a.label("fallback");
    a.ppa(R0);
    a.delay(16);
    a.label("joined");
    // CAS on a private line plus some ALU/clock coverage.
    a.lghi(R2, 0);
    a.lghi(R3, 1);
    a.csg(R2, R3, MemOperand::absolute(0x4000));
    a.stg(R2, MemOperand::absolute(0x4000)); // reset for the next round
    a.rdclk(R5);
    a.push(Instr::Xgr(R5, R5));
    a.sllg(R4, R6, 2);
    a.cgij_ge(R4, 0, "counted");
    a.label("counted");
    a.stckf(MemOperand::absolute(0x5000));
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().expect("mixed program assembles")
}

/// Builds a 4-CPU system running [`mixed_program`], with a recording tracer.
fn mixed_system(legacy: bool) -> (System, std::sync::Arc<std::sync::Mutex<Recorder>>) {
    let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
    sys.set_legacy_interpreter(legacy);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    sys.load_program_all(&mixed_program());
    (sys, recorder)
}

/// The legacy `Instr` walk and the predecoded dispatch must agree on every
/// single step: same CPU scheduled, same [`ztm::isa::StepOutcome`]
/// (cycles, event, broadcast-stop), and the same trace digest at the end.
#[test]
fn predecoded_and_legacy_interpreters_step_identically() {
    let (mut fast, fast_rec) = mixed_system(false);
    let (mut slow, slow_rec) = mixed_system(true);
    let mut steps = 0u64;
    loop {
        let a = fast.step_one();
        let b = slow.step_one();
        assert_eq!(a, b, "divergence at step {steps}");
        steps += 1;
        if a.is_none() {
            break;
        }
        assert!(steps < 2_000_000, "mixed program failed to halt");
    }
    assert!(
        steps > 10_000,
        "program too short to be a meaningful differential"
    );
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
}

/// Same check through a full workload driver (the lock-elided hashtable of
/// Fig 5(e)), where aborts, retries, and the fallback lock all fire.
#[test]
fn predecoded_and_legacy_agree_on_the_elision_hashtable() {
    let run = |legacy: bool| {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
        sys.set_legacy_interpreter(legacy);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 60);
        let digest = recorder.lock().unwrap().digest();
        (rep.system.steps, digest)
    };
    assert_eq!(run(false), run(true));
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_mem() -> impl Strategy<Value = MemOperand> {
    prop_oneof![
        (0u64..0x10_000).prop_map(MemOperand::absolute),
        (arb_reg(), 0i64..4096).prop_map(|(b, d)| MemOperand::based(b, d)),
        (arb_reg(), arb_reg(), 0i64..4096).prop_map(|(b, x, d)| MemOperand::indexed(b, x, d)),
    ]
}

fn arb_roi() -> impl Strategy<Value = RegOrImm> {
    prop_oneof![
        arb_reg().prop_map(RegOrImm::Reg),
        (256u64..2048).prop_map(RegOrImm::Imm),
    ]
}

fn arb_cond() -> impl Strategy<Value = CmpCond> {
    prop_oneof![
        Just(CmpCond::Eq),
        Just(CmpCond::Ne),
        Just(CmpCond::Lt),
        Just(CmpCond::Le),
        Just(CmpCond::Gt),
        Just(CmpCond::Ge),
    ]
}

fn arb_tbegin() -> impl Strategy<Value = TbeginParams> {
    (
        any::<u8>(),
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        proptest::option::of(0u64..0x1000),
    )
        .prop_map(|(mask, ar, fp, pifc, tdb)| TbeginParams {
            grsm: GrSaveMask::new(mask),
            allow_ar_mod: ar,
            allow_fp_mod: fp,
            pifc: match pifc {
                0 => Pifc::None,
                1 => Pifc::Data,
                _ => Pifc::DataAndAccess,
            },
            tdb: tdb.map(|a| Address::new(a * 8)),
        })
}

/// Every `Instr` variant the assembler can emit. Branch targets are raw
/// instruction indices below `max_target`; the round-trip never executes
/// the program, so dangling targets are fine.
fn arb_instr(max_target: usize) -> impl Strategy<Value = Instr> {
    let t = 0..max_target;
    prop_oneof![
        (arb_reg(), arb_mem()).prop_map(|(r, m)| Instr::Lg(r, m)),
        (arb_reg(), arb_mem()).prop_map(|(r, m)| Instr::Stg(r, m)),
        (arb_reg(), arb_mem()).prop_map(|(r, m)| Instr::Ltg(r, m)),
        (arb_reg(), -0x8000i64..0x8000).prop_map(|(r, i)| Instr::Lghi(r, i)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Lgr(a, b)),
        (arb_reg(), arb_mem()).prop_map(|(r, m)| Instr::La(r, m)),
        (arb_reg(), arb_reg(), arb_mem()).prop_map(|(a, b, m)| Instr::Csg(a, b, m)),
        (arb_reg(), arb_mem()).prop_map(|(r, m)| Instr::Ntstg(r, m)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Agr(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Sgr(a, b)),
        (arb_reg(), -0x8000i64..0x8000).prop_map(|(r, i)| Instr::Aghi(r, i)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Ngr(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Xgr(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Msgr(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Dsgr(a, b)),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(a, b, s)| Instr::Sllg(a, b, s)),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(a, b, s)| Instr::Srlg(a, b, s)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Ltgr(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Cgr(a, b)),
        (arb_reg(), -0x8000i64..0x8000).prop_map(|(r, i)| Instr::Cghi(r, i)),
        (0u8..16, t.clone()).prop_map(|(mask, t)| Instr::Brc(mask, t)),
        (arb_reg(), -100i64..100, arb_cond(), t.clone())
            .prop_map(|(r, i, c, t)| Instr::Cgij(r, i, c, t)),
        (arb_reg(), t).prop_map(|(r, t)| Instr::Brctg(r, t)),
        arb_reg().prop_map(Instr::Br),
        arb_tbegin().prop_map(Instr::Tbegin),
        any::<u8>().prop_map(|m| Instr::Tbeginc(GrSaveMask::new(m))),
        Just(Instr::Tend),
        arb_roi().prop_map(Instr::Tabort),
        arb_reg().prop_map(Instr::Etnd),
        arb_reg().prop_map(Instr::Ppa),
        arb_mem().prop_map(Instr::Stckf),
        arb_reg().prop_map(Instr::Rdclk),
        (arb_reg(), arb_roi()).prop_map(|(r, b)| Instr::RandMod(r, b)),
        (0u8..16, arb_reg()).prop_map(|(ar, r)| Instr::Sar(ar, r)),
        (arb_reg(), 0u8..16).prop_map(|(r, ar)| Instr::Ear(r, ar)),
        (0u8..16, 0u8..16).prop_map(|(a, b)| Instr::Adbr(a, b)),
        Just(Instr::Decimal),
        Just(Instr::Privileged),
        Just(Instr::Nop),
        (1u64..10_000).prop_map(Instr::Delay),
        Just(Instr::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Predecode is lossless: reifying the decoded record of any assembled
    /// instruction produces the identical instruction (and therefore the
    /// identical disassembly), and the flat table preserves lengths and
    /// byte addresses exactly.
    #[test]
    fn predecode_round_trips_every_assemblable_instruction(
        instrs in proptest::collection::vec(arb_instr(48), 1..48),
        base in 0u64..0x4000,
    ) {
        let mut a = Assembler::new(base * 2);
        for i in &instrs {
            // Branch targets were drawn below the *maximum* program length;
            // wrap them into this program (predecode resolves target
            // addresses, so targets must be real instruction indices).
            let mut i = i.clone();
            if let Instr::Brc(_, t) | Instr::Cgij(_, _, _, t) | Instr::Brctg(_, t) = &mut i {
                *t %= instrs.len();
            }
            a.push(i);
        }
        let prog = a.assemble().expect("raw instruction streams assemble");
        let mut addr = base * 2;
        for idx in 0..prog.len() {
            let original = prog.instr(idx);
            let reified = prog.reconstruct(idx);
            prop_assert_eq!(&reified, original, "instr {} reifies differently", idx);
            prop_assert_eq!(reified.to_string(), original.to_string());
            prop_assert_eq!(prog.addr_of(idx), addr);
            addr += original.len();
        }
    }
}
