//! Cross-crate integration tests: transactional atomicity and isolation on
//! the full system, across CPU counts, pool shapes, methods, and seeds.

use ztm::sim::{System, SystemConfig};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

fn pool_sum_matches(method: SyncMethod, cpus: usize, pool: u64, vars: usize, seed: u64) {
    let ops = 40;
    let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, seed);
    let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(seed));
    let rep = wl.run(&mut sys, ops);
    assert_eq!(
        rep.committed_ops(),
        cpus as u64 * ops,
        "every CPU completed its operations ({method:?}, {cpus} CPUs)"
    );
    assert_eq!(
        wl.pool_sum(&sys),
        cpus as u64 * ops * vars as u64,
        "no update lost or duplicated ({method:?}, {cpus} CPUs, pool {pool}, seed {seed})"
    );
}

#[test]
fn tbegin_atomicity_across_shapes() {
    for (cpus, pool, vars) in [(2, 1, 1), (4, 4, 1), (6, 10, 4), (8, 64, 4)] {
        pool_sum_matches(SyncMethod::Tbegin, cpus, pool, vars, 1);
    }
}

#[test]
fn tbeginc_atomicity_across_shapes() {
    for (cpus, pool, vars) in [(2, 1, 1), (4, 4, 1), (6, 10, 4), (8, 64, 4)] {
        pool_sum_matches(SyncMethod::Tbeginc, cpus, pool, vars, 2);
    }
}

#[test]
fn lock_atomicity_across_shapes() {
    for (cpus, pool, vars) in [(2, 1, 1), (6, 10, 4), (8, 64, 1)] {
        pool_sum_matches(SyncMethod::CoarseLock, cpus, pool, vars, 3);
    }
    pool_sum_matches(SyncMethod::FineLock, 6, 16, 1, 3);
}

#[test]
fn atomicity_is_seed_independent() {
    for seed in [7, 99, 12345, 0xdead_beef] {
        pool_sum_matches(SyncMethod::Tbegin, 4, 8, 4, seed);
        pool_sum_matches(SyncMethod::Tbeginc, 4, 8, 1, seed);
    }
}

#[test]
fn atomicity_across_mcm_boundaries() {
    // 30 CPUs span two MCMs in the testbed topology (24 per MCM): the
    // cross-MCM latencies and longer conflict windows must not break
    // anything.
    pool_sum_matches(SyncMethod::Tbegin, 30, 10, 1, 4);
    pool_sum_matches(SyncMethod::Tbeginc, 30, 10, 1, 4);
}

#[test]
fn unsynchronized_updates_race() {
    let wl = PoolWorkload::new(PoolLayout::new(1, 1), SyncMethod::None, 5);
    let mut sys = System::new(SystemConfig::with_cpus(8).seed(5));
    wl.run(&mut sys, 60);
    assert!(
        wl.pool_sum(&sys) < 8 * 60,
        "a data race must lose updates — otherwise the conflict model is vacuous"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let wl = PoolWorkload::new(PoolLayout::new(8, 4), SyncMethod::Tbegin, 9);
        let mut sys = System::new(SystemConfig::with_cpus(6).seed(9));
        let rep = wl.run(&mut sys, 30);
        (
            rep.system.elapsed_cycles,
            rep.system.tx.commits,
            rep.system.tx.aborts,
            rep.system.stalls,
        )
    };
    assert_eq!(run(), run(), "simulation must be exactly reproducible");
}

#[test]
fn read_only_transactions_never_abort_each_other() {
    let wl = PoolWorkload::new(PoolLayout::new(32, 4), SyncMethod::Tbeginc, 11).read_only();
    let mut cfg = SystemConfig::with_cpus(12).seed(11);
    cfg.speculative_prefetch = false;
    let mut sys = System::new(cfg);
    let rep = wl.run(&mut sys, 50);
    assert_eq!(rep.committed_ops(), 12 * 50);
    assert_eq!(rep.system.tx.aborts, 0, "read sharing is conflict-free");
}
