//! Differential tests for superblock stepping.
//!
//! Superblock stepping (`System::set_superblocks`, escape hatch
//! `ZTM_NO_SUPERBLOCK=1`) executes a straight-line decoded region as one
//! scheduler event instead of one event per instruction. It is a host-speed
//! optimization with *zero* simulated effect, and these tests pin that: a
//! superblock system and a scalar system must agree on every single step
//! (scheduled CPU, `StepOutcome`, broadcast-stop), on the full
//! `StepLogEntry` stream, and on the trace digest — including when a
//! `step_many` budget or a `run_for_cycles` horizon lands in the middle of
//! a block, and under the sharded driver (`ZTM_SIM_THREADS`), which never
//! engages the fast path.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use ztm::core::TbeginParams;
use ztm::isa::gr::*;
use ztm::isa::{Assembler, MemOperand, Program};
use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};

/// A program shaped to exercise every superblock boundary: long
/// straight-line bursts (the batched case), contended read-modify-writes
/// (stalls break blocks), a transaction with an abort fallback (TX ops are
/// singleton blocks; aborts bail mid-block), taken and fall-through
/// branches, and a delay (a large clock jump that crosses stop keys).
fn mixed_program() -> Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 200);
    a.label("loop");
    // A long straight-line burst over one line — the batched case.
    for k in 0..6 {
        a.lg(R1, MemOperand::absolute(0x8000 + k * 8));
    }
    // Contended read-modify-write on a shared line (XI stalls mid-block).
    a.lg(R2, MemOperand::absolute(0x1000));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(0x1000));
    // The Figure 1 elision shape: TX boundaries are singleton blocks and
    // the abort path branches out of the straight line.
    a.tbegin(TbeginParams::new());
    a.jnz("fallback");
    a.ltg(R3, MemOperand::absolute(0x2000));
    a.jnz("fallback");
    a.lg(R4, MemOperand::absolute(0x3000));
    a.aghi(R4, 1);
    a.stg(R4, MemOperand::absolute(0x3000));
    a.tend();
    a.j("joined");
    a.label("fallback");
    a.ppa(R0);
    a.delay(16);
    a.label("joined");
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().expect("mixed program assembles")
}

/// Builds a multi-CPU system running [`mixed_program`] with a recording
/// tracer, superblocks on or off.
fn mixed_system(cpus: usize, superblocks: bool) -> (System, Arc<Mutex<Recorder>>) {
    let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
    sys.set_superblocks(superblocks);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    sys.load_program_all(&mixed_program());
    (sys, recorder)
}

/// Runs the system to halt through `step_many` with an unbounded budget
/// (each call executes one scheduler batch), returning total steps.
fn drain(sys: &mut System, cap: u64) -> u64 {
    let mut steps = 0u64;
    loop {
        let k = sys.step_many(u64::MAX);
        if k == 0 {
            return steps;
        }
        steps += k;
        assert!(steps < cap, "program failed to halt within {cap} steps");
    }
}

/// The superblock and scalar paths must agree on every single step: same
/// CPU scheduled, same [`ztm::isa::StepOutcome`], and the same trace digest
/// at the end.
#[test]
fn superblock_and_scalar_step_identically() {
    let (mut fast, fast_rec) = mixed_system(4, true);
    let (mut slow, slow_rec) = mixed_system(4, false);
    let mut steps = 0u64;
    loop {
        let a = fast.step_one();
        let b = slow.step_one();
        assert_eq!(a, b, "divergence at step {steps}");
        steps += 1;
        if a.is_none() {
            break;
        }
        assert!(steps < 2_000_000, "mixed program failed to halt");
    }
    assert!(
        steps > 10_000,
        "program too short to be a meaningful differential"
    );
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
    assert!(
        fast.superblock_steps() > 0,
        "the superblock side never took the fast path"
    );
    assert_eq!(slow.superblock_steps(), 0);
}

/// Unconstrained batching (a huge `step_many` budget, so blocks only break
/// at real boundaries) produces the identical step log and digest, and the
/// fast path carries the bulk of a straight-line-heavy single-CPU run.
#[test]
fn superblock_batches_bulk_of_straight_line_run() {
    let run = |superblocks: bool| {
        let (mut sys, rec) = mixed_system(1, superblocks);
        sys.set_step_log(true);
        drain(&mut sys, 2_000_000);
        let digest = rec.lock().unwrap().digest();
        (sys.take_step_log(), digest, sys.superblock_steps())
    };
    let (fast_log, fast_digest, fast_sb) = run(true);
    let (slow_log, slow_digest, slow_sb) = run(false);
    assert_eq!(fast_log, slow_log);
    assert_eq!(fast_digest, slow_digest);
    assert_eq!(slow_sb, 0);
    // The 9-instruction load burst batches every iteration; the short
    // blocks between branches and TX boundaries stay scalar by design.
    assert!(
        fast_sb > fast_log.len() as u64 / 3,
        "superblocks covered only {fast_sb} of {} steps",
        fast_log.len()
    );
}

/// `step_many` budgets that land mid-superblock must stop at exactly the
/// budgeted step: after every chunk both systems agree on the executed
/// count, every core's clock and pc, and the full step log.
#[test]
fn step_many_budget_lands_mid_superblock() {
    let (mut fast, fast_rec) = mixed_system(2, true);
    let (mut slow, slow_rec) = mixed_system(2, false);
    fast.set_step_log(true);
    slow.set_step_log(true);
    // Odd, prime-ish chunk sizes so budget boundaries sweep across every
    // offset inside the 6-load burst block.
    for chunk in (0..).map(|i| 1 + (i * 7) % 13) {
        let a = fast.step_many(chunk);
        let b = slow.step_many(chunk);
        assert_eq!(a, b, "executed counts diverge at chunk size {chunk}");
        for cpu in 0..2 {
            assert_eq!(fast.core(cpu).clock, slow.core(cpu).clock);
            assert_eq!(fast.core(cpu).pc, slow.core(cpu).pc);
        }
        if a == 0 {
            break;
        }
    }
    assert_eq!(fast.take_step_log(), slow.take_step_log());
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
    assert!(fast.superblock_steps() > 0);
}

/// `run_for_cycles` horizons that land mid-superblock must stop exactly at
/// the horizon: no step whose pre-step clock is past it may execute, and
/// sweeping the horizon forward in odd increments keeps both systems in
/// lockstep on clocks and the step log.
#[test]
fn run_for_cycles_horizon_lands_mid_superblock() {
    let (mut fast, fast_rec) = mixed_system(2, true);
    let (mut slow, slow_rec) = mixed_system(2, false);
    fast.set_step_log(true);
    slow.set_step_log(true);
    let mut horizon = 0u64;
    for _ in 0..300 {
        horizon += 97;
        fast.run_for_cycles(horizon);
        slow.run_for_cycles(horizon);
        for cpu in 0..2 {
            assert_eq!(fast.core(cpu).clock, slow.core(cpu).clock);
            assert_eq!(fast.core(cpu).pc, slow.core(cpu).pc);
        }
        let log = fast.take_step_log();
        assert_eq!(&log, &slow.take_step_log(), "diverged at horizon {horizon}");
        // The stopping rule itself: nothing past the horizon executed.
        assert!(log.iter().all(|e| e.clock < horizon));
    }
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
    assert!(fast.superblock_steps() > 0);
}

/// Full workload driver check (the lock-elided hashtable of Fig 5(e)),
/// where aborts, retries, and the fallback lock all fire.
#[test]
fn superblock_and_scalar_agree_on_the_elision_hashtable() {
    let run = |superblocks: bool| {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
        sys.set_superblocks(superblocks);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 60);
        let digest = recorder.lock().unwrap().digest();
        (rep.system.steps, digest)
    };
    assert_eq!(run(true), run(false));
}

/// The sharded driver never engages superblocks, and its output must stay
/// byte-identical to the serial superblock run: serial + superblocks,
/// sharded + superblocks, and sharded + scalar all produce the same step
/// log and digest.
#[test]
fn sharded_runs_match_serial_superblock_runs() {
    let run = |threads: usize, superblocks: bool| {
        let mut sys = System::new(SystemConfig::with_cpus(12).seed(9));
        sys.set_sim_threads(threads);
        sys.set_superblocks(superblocks);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        sys.load_program_all(&mixed_program());
        sys.set_step_log(true);
        drain(&mut sys, 5_000_000);
        let digest = recorder.lock().unwrap().digest();
        (sys.take_step_log(), digest, sys.superblock_steps())
    };
    let (serial_log, serial_digest, serial_sb) = run(1, true);
    let (sharded_log, sharded_digest, sharded_sb) = run(2, true);
    let (scalar_log, scalar_digest, _) = run(2, false);
    assert!(serial_sb > 0);
    assert_eq!(sharded_sb, 0, "the sharded driver must not engage blocks");
    assert_eq!(serial_log, sharded_log);
    assert_eq!(serial_digest, sharded_digest);
    assert_eq!(sharded_log, scalar_log);
    assert_eq!(sharded_digest, scalar_digest);
}

/// Lowers a random op stream into a halting program: straight-line access
/// and ALU bursts over two lines, transaction begin/end, and forward-only
/// conditional branches (labels sit at every op boundary, so targets land
/// anywhere ahead — including mid-block, splitting blocks statically).
/// A bounded outer `brctg` loop re-runs the whole body a few times so
/// backward-branch block boundaries are exercised too.
fn random_program(ops: &[(u8, u8)]) -> Program {
    let mut a = Assembler::new(0);
    let mut depth = 0u32;
    a.lghi(R6, 3);
    a.label("loop");
    for (j, &(kind, off)) in ops.iter().enumerate() {
        a.label(&format!("p{j}"));
        let at = |base: u64| MemOperand::absolute(base + (off % 32) as u64 * 8);
        match kind {
            0 => {
                a.lg(R1, at(0x8000));
            }
            1 => {
                a.stg(R1, at(0x8000));
            }
            2 => {
                a.lg(R2, at(0x8100));
            }
            3 => {
                a.stg(R2, at(0x8100));
            }
            4 => {
                a.tbegin(TbeginParams::new());
                depth += 1;
            }
            5 => {
                if depth > 0 {
                    a.tend();
                    depth -= 1;
                }
            }
            6 => {
                // Forward-only branch (the program always halts): keyed on
                // the outer loop counter, so the same site is taken in
                // early iterations and falls through in the last one.
                let t = j + 1 + off as usize % (ops.len() - j);
                if t < ops.len() {
                    a.cgij_ge(R6, 2, &format!("p{t}"));
                } else {
                    a.cgij_ge(R6, 2, "end");
                }
            }
            _ => {
                a.aghi(R3, 1);
            }
        }
    }
    a.label("end");
    while depth > 0 {
        a.tend();
        depth -= 1;
    }
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().expect("random program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Random programs over one to three CPUs (XI stalls break blocks at
    /// random points) must produce the identical per-step `StepLogEntry`
    /// stream and trace digest with superblocks on and off.
    #[test]
    fn random_programs_agree_per_step(
        ops in proptest::collection::vec((0u8..8, any::<u8>()), 1..80),
        cpus in 1usize..4,
    ) {
        let prog = random_program(&ops);
        let run = |superblocks: bool| {
            let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
            sys.set_superblocks(superblocks);
            let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
            sys.set_tracer(tracer);
            sys.load_program_all(&prog);
            sys.set_step_log(true);
            let mut steps = 0u64;
            loop {
                let k = sys.step_many(u64::MAX);
                if k == 0 {
                    break;
                }
                steps += k;
                assert!(steps < 500_000, "random program failed to halt");
            }
            let digest = recorder.lock().unwrap().digest();
            (sys.take_step_log(), digest)
        };
        let (fast_log, fast_digest) = run(true);
        let (slow_log, slow_digest) = run(false);
        prop_assert_eq!(fast_log.len(), slow_log.len());
        prop_assert_eq!(fast_log, slow_log);
        prop_assert_eq!(fast_digest, slow_digest);
    }
}
