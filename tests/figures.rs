//! Cheap shape checks for every §IV experiment: the orderings and
//! crossovers the paper reports must hold in reduced-size runs. The full
//! sweeps live in the `ztm-bench` binaries; these tests guard the shapes
//! against regressions.

use ztm::cache::{AccessClass, CacheGeometry, CohState, FootprintEvent, PrivateCache};
use ztm::mem::LineAddr;
use ztm::sim::{System, SystemConfig};
use ztm::workloads::hashtable::{HashTable, TableMethod};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};
use ztm::workloads::queue::{ConcurrentQueue, QueueMethod};
use ztm::workloads::rwlock::{ReadMethod, ReadWorkload};

fn pool_throughput(method: SyncMethod, cpus: usize, pool: u64, vars: usize) -> f64 {
    let wl = PoolWorkload::new(PoolLayout::new(pool, vars), method, 42);
    let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
    wl.run(&mut sys, 60).throughput()
}

#[test]
fn e1_uncontended_tx_beats_lock_and_variants_are_close() {
    // §IV: transactions outperform locks by ~30% uncontended; constrained
    // and non-constrained are comparable.
    let lock = pool_throughput(SyncMethod::CoarseLock, 1, 1, 1);
    let tbegin = pool_throughput(SyncMethod::Tbegin, 1, 1, 1);
    let tbeginc = pool_throughput(SyncMethod::Tbeginc, 1, 1, 1);
    assert!(tbegin > lock * 1.1, "TBEGIN {tbegin} vs lock {lock}");
    assert!(tbeginc >= tbegin, "TBEGINC at least as fast uncontended");
    assert!(tbeginc < tbegin * 1.6, "variants are comparable");
}

#[test]
fn fig5a_transactions_scale_where_coarse_locks_do_not() {
    let cpus = 12;
    let lock = pool_throughput(SyncMethod::CoarseLock, cpus, 1000, 4);
    let tbeginc = pool_throughput(SyncMethod::Tbeginc, cpus, 1000, 4);
    let tbegin = pool_throughput(SyncMethod::Tbegin, cpus, 1000, 4);
    assert!(tbeginc > 3.0 * lock, "TBEGINC {tbeginc} vs lock {lock}");
    assert!(tbegin > 3.0 * lock, "TBEGIN {tbegin} vs lock {lock}");
}

#[test]
fn fig5a_tbeginc_approaches_unsynchronized_on_large_pools() {
    let cpus = 12;
    let none = pool_throughput(SyncMethod::None, cpus, 1000, 4);
    let tbeginc = pool_throughput(SyncMethod::Tbeginc, cpus, 1000, 4);
    assert!(
        tbeginc > 0.8 * none,
        "TBEGINC {tbeginc} should be close to unsynchronized {none} (paper: 99.8%)"
    );
}

#[test]
fn fig5b_ordering_small_hot_pool() {
    // Single variable, pool 10: TX > fine lock > coarse lock.
    let cpus = 8;
    let coarse = pool_throughput(SyncMethod::CoarseLock, cpus, 10, 1);
    let fine = pool_throughput(SyncMethod::FineLock, cpus, 10, 1);
    let tbeginc = pool_throughput(SyncMethod::Tbeginc, cpus, 10, 1);
    let tbegin = pool_throughput(SyncMethod::Tbegin, cpus, 10, 1);
    assert!(fine > coarse, "fine {fine} > coarse {coarse}");
    assert!(tbeginc > fine, "TBEGINC {tbeginc} > fine {fine}");
    assert!(tbegin > fine, "TBEGIN {tbegin} > fine {fine}");
}

#[test]
fn fig5c_locks_win_under_extreme_contention() {
    // 4 variables from a pool of 10: transactions help at low CPU counts
    // but locks degrade less steeply (§IV's four-variable discussion).
    let lock_low = pool_throughput(SyncMethod::CoarseLock, 2, 10, 4);
    let tx_low = pool_throughput(SyncMethod::Tbeginc, 2, 10, 4);
    assert!(
        tx_low > lock_low,
        "TX wins at 2 CPUs: {tx_low} vs {lock_low}"
    );
    let lock_high = pool_throughput(SyncMethod::CoarseLock, 16, 10, 4);
    let tx_high = pool_throughput(SyncMethod::Tbeginc, 16, 10, 4);
    assert!(
        lock_high > tx_high,
        "lock wins at 16 CPUs: {lock_high} vs {tx_high}"
    );
}

#[test]
fn fig5d_transactional_readers_beat_rwlock() {
    let run = |method| {
        let wl = ReadWorkload::new(512, method);
        let mut sys = System::new(SystemConfig::with_cpus(10).seed(42));
        wl.run(&mut sys, 40).throughput()
    };
    let rw = run(ReadMethod::RwLock);
    let tx = run(ReadMethod::Tbeginc);
    assert!(tx > 1.5 * rw, "TBEGINC {tx} vs rwlock {rw}");
}

#[test]
fn fig5e_elision_scales_global_lock_does_not() {
    let run = |method, cpus| {
        let t = HashTable::new(256, 1024, 20, method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
        t.populate(&mut sys, &(0..512).collect::<Vec<_>>());
        t.run(&mut sys, 60).throughput()
    };
    let lock1 = run(TableMethod::GlobalLock, 1);
    let lock6 = run(TableMethod::GlobalLock, 6);
    let tx6 = run(TableMethod::Elision, 6);
    // The paper notes slight growth at small counts (miss latency hidden
    // under lock waiting) before flattening.
    assert!(
        lock6 < 2.5 * lock1,
        "global lock stays flat-ish: {lock1} → {lock6}"
    );
    assert!(tx6 > 2.0 * lock6, "elision scales: {tx6} vs {lock6}");
}

#[test]
fn fig5f_lru_extension_expands_the_footprint_bound() {
    // Monte-Carlo on the real cache mechanism: at 450 random lines the
    // 64x6 configuration aborts nearly always, the 512x8 one nearly never.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let rate = |ext: bool, rng: &mut SmallRng| {
        let geom = CacheGeometry {
            lru_extension: ext,
            ..CacheGeometry::zec12()
        };
        let trials = 40;
        let aborts = (0..trials)
            .filter(|_| {
                let mut cache = PrivateCache::new(geom.clone());
                cache.begin_outermost_tx();
                for _ in 0..450 {
                    let line = LineAddr::new(rng.gen_range(0..1_000_000));
                    let out = cache.install(line, CohState::ReadOnly, AccessClass::Fetch, true);
                    if out
                        .events
                        .iter()
                        .any(|e| matches!(e, FootprintEvent::FetchOverflow { .. }))
                    {
                        return true;
                    }
                }
                false
            })
            .count();
        aborts as f64 / 40.0
    };
    let mut rng = SmallRng::seed_from_u64(3);
    let without = rate(false, &mut rng);
    let with = rate(true, &mut rng);
    assert!(without > 0.9, "64x6 aborts nearly always: {without}");
    assert!(with < 0.1, "512x8 almost never: {with}");
}

#[test]
fn e2_constrained_queue_beats_lock_by_around_2x() {
    let run = |method| {
        let q = ConcurrentQueue::new(method);
        let mut sys = System::new(SystemConfig::with_cpus(8).seed(42));
        q.seed(&mut sys, 64);
        q.run(&mut sys, 60).throughput()
    };
    let lock = run(QueueMethod::Lock);
    let tx = run(QueueMethod::Tbeginc);
    let ratio = tx / lock;
    assert!(
        (1.2..4.0).contains(&ratio),
        "paper reports ~2x; got {ratio:.2}x"
    );
}

#[test]
fn e3_stiff_arming_helps_under_contention() {
    let run = |stiff| {
        let mut cfg = SystemConfig::with_cpus(12).seed(42);
        cfg.geometry.stiff_arm = stiff;
        let mut sys = System::new(cfg);
        let wl = PoolWorkload::new(PoolLayout::new(10, 1), SyncMethod::Tbegin, 42);
        let rep = wl.run(&mut sys, 40);
        (rep.throughput(), rep.abort_rate())
    };
    let (with, ab_with) = run(true);
    let (without, ab_without) = run(false);
    assert!(with > without, "stiff-arm throughput {with} vs {without}");
    assert!(
        ab_without > ab_with,
        "stiff-arm reduces aborts: {ab_with} vs {ab_without}"
    );
}

#[test]
fn e4_retry_ladder_reduces_aborts_per_commit() {
    use ztm::core::RetryLadderConfig;
    let run = |ladder: RetryLadderConfig| {
        let mut cfg = SystemConfig::with_cpus(8).seed(42);
        cfg.engine.retry_ladder = ladder;
        let mut sys = System::new(cfg);
        let wl = PoolWorkload::new(PoolLayout::new(4, 4), SyncMethod::Tbeginc, 42);
        let rep = wl.run(&mut sys, 30);
        assert_eq!(rep.committed_ops(), 240, "forward progress regardless");
        rep.system.tx.aborts as f64 / rep.system.tx.commits as f64
    };
    let bare = run(RetryLadderConfig {
        enable_speculation_stage: false,
        enable_broadcast_stage: false,
        ..RetryLadderConfig::zec12()
    });
    let full = run(RetryLadderConfig::zec12());
    assert!(
        full < bare,
        "the full ladder wastes fewer attempts: {full:.2} vs {bare:.2} aborts/commit"
    );
}
