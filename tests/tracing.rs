//! End-to-end tests of the `ztm-trace` subsystem against real simulated
//! runs: digest determinism, Chrome-trace round-tripping, and the
//! trace-replay invariant checker on contended workloads.

use ztm::sim::{System, SystemConfig};
use ztm::trace::{
    check_invariants, digest_of, parse_chrome_trace, Event, Metrics, Recorder, TracedEvent, Tracer,
};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

/// A heavily contended pool update: every CPU hammers a tiny pool.
fn contended_run(seed: u64) -> (std::sync::Arc<std::sync::Mutex<Recorder>>, u64) {
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    let mut sys = System::new(SystemConfig::with_cpus(6).seed(seed));
    sys.set_tracer(tracer);
    let wl = PoolWorkload::new(PoolLayout::new(2, 1), SyncMethod::Tbegin, seed);
    let report = wl.run(&mut sys, 40);
    (recorder, report.committed_ops())
}

#[test]
fn identically_seeded_runs_produce_identical_digests() {
    let (a, ops_a) = contended_run(42);
    let (b, ops_b) = contended_run(42);
    assert_eq!(ops_a, ops_b);
    assert_eq!(a.lock().unwrap().digest(), b.lock().unwrap().digest());
    assert_eq!(a.lock().unwrap().len(), b.lock().unwrap().len());
    // A different seed perturbs the event stream.
    let (c, _) = contended_run(43);
    assert_ne!(a.lock().unwrap().digest(), c.lock().unwrap().digest());
}

#[test]
fn invariant_checker_passes_on_a_contended_run_and_trace_round_trips() {
    let (recorder, ops) = contended_run(7);
    assert!(ops > 0);
    let rec = recorder.lock().unwrap();
    let events = rec.snapshot();
    assert!(
        events.iter().any(
            |e| matches!(e.event, Event::XiAccept { conflict: true, .. })
                || matches!(e.event, Event::XiReject { .. })
        ),
        "a 6-CPU pool of 2 lines must show coherence conflicts"
    );
    if let Err(v) = check_invariants(&events) {
        panic!("invariant violations on a legal run: {v:#?}");
    }
    // The Chrome export parses back to the identical stream.
    let parsed = parse_chrome_trace(&rec.chrome_trace_json()).unwrap();
    assert_eq!(parsed.len(), events.len());
    assert_eq!(digest_of(&parsed), rec.digest());
    // And the metrics recomputed from the parsed stream match the
    // incrementally-folded ones.
    let m = Metrics::from_events(&parsed);
    assert_eq!(m.tx_commits, rec.metrics().tx_commits);
    assert_eq!(m.abort_codes, rec.metrics().abort_codes);
}

#[test]
fn corrupted_stream_fails_the_invariant_checker() {
    let (recorder, _) = contended_run(7);
    let mut events = recorder.lock().unwrap().snapshot();
    let clock = events.last().map_or(0, |e| e.clock) + 1;
    // Forge a window that commits after accepting a conflicting Exclusive
    // XI — the isolation violation the checker exists to catch.
    events.push(TracedEvent {
        clock,
        cpu: 0,
        event: Event::TxBegin {
            constrained: false,
            depth: 1,
        },
    });
    events.push(TracedEvent {
        clock: clock + 1,
        cpu: 0,
        event: Event::XiAccept {
            line: 0xDEAD,
            kind: ztm::trace::xi_kind::EXCLUSIVE,
            conflict: true,
        },
    });
    events.push(TracedEvent {
        clock: clock + 2,
        cpu: 0,
        event: Event::TxCommit,
    });
    let violations = check_invariants(&events).unwrap_err();
    assert!(
        violations.iter().any(|v| v.contains("conflicting XI")),
        "{violations:#?}"
    );
    // The corruption also shows in the digest.
    assert_ne!(digest_of(&events), recorder.lock().unwrap().digest());
}
