//! Architectural semantics on the full multi-CPU system: abort resume
//! points, TDB contents, NTSTG isolation, strong atomicity, and the
//! transactional footprint limits of §II/§III.

use ztm::core::{GrSaveMask, TbeginParams, Tdb};
use ztm::isa::{gr::*, Assembler, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};

const TDB_ADDR: u64 = 0x8_0000;

/// Two CPUs: a reader transaction holding a line open, and a writer whose
/// plain store conflicts. Returns the system after both halted.
fn conflict_scenario() -> System {
    let shared = 0x5_0000u64;
    let mut a0 = Assembler::new(0);
    let params = TbeginParams {
        tdb: Some(Address::new(TDB_ADDR)),
        ..TbeginParams::new()
    };
    a0.lghi(R7, 0x77); // visible in the TDB GR snapshot
    a0.tbegin(params);
    a0.jnz("aborted");
    a0.label("spin");
    a0.lg(R3, MemOperand::absolute(shared));
    a0.cghi(R3, 0);
    a0.jz("spin");
    a0.tend();
    a0.halt();
    a0.label("aborted");
    a0.halt();
    let p0 = a0.assemble().unwrap();

    let mut a1 = Assembler::new(0x1000);
    a1.delay(2_000);
    a1.lghi(R1, 1);
    a1.stg(R1, MemOperand::absolute(shared));
    a1.halt();
    let p1 = a1.assemble().unwrap();

    let mut cfg = SystemConfig::with_cpus(2);
    cfg.speculative_prefetch = false;
    let mut sys = System::new(cfg);
    sys.load_program(0, &p0);
    sys.load_program(1, &p1);
    sys.run_until_halt(10_000_000);
    sys
}

#[test]
fn conflict_abort_fills_tdb() {
    let sys = conflict_scenario();
    let tdb = Tdb::load_from(sys.mem(), Address::new(TDB_ADDR));
    assert_eq!(tdb.abort_code(), 9, "fetch conflict");
    assert!(tdb.conflict_token_valid());
    assert_eq!(
        tdb.conflict_token(),
        Some(Address::new(0x5_0000).line().base().raw())
    );
    assert_eq!(tdb.gr(7), 0x77, "GR snapshot at abort time");
    assert_eq!(sys.core(0).cc, 2, "conflicts are transient (CC 2)");
    assert_eq!(sys.tx_stats(0).aborts, 1);
}

#[test]
fn strong_atomicity_against_plain_stores() {
    // §II.A: transactions are isolated even against non-transactional
    // accesses from other CPUs — the scenario above relies on it, and the
    // writer's store must land.
    let sys = conflict_scenario();
    assert_eq!(sys.mem().load_u64(Address::new(0x5_0000)), 1);
}

#[test]
fn store_footprint_overflow_is_permanent() {
    // Fill more 128-byte granules than the 64-entry store cache can hold:
    // the transaction must abort with CC 3 (store overflow, code 8).
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("handler");
    a.lghi(R1, 1);
    a.lghi(R5, 0x10_0000); // base address
    a.lghi(R6, 70); // 70 distinct granules > 64 entries
    a.label("fill");
    a.stg(R1, MemOperand::based(R5, 0));
    a.aghi(R5, 128);
    a.brctg(R6, "fill");
    a.tend();
    a.halt();
    a.label("handler");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.run_until_halt(1_000_000);
    assert_eq!(
        sys.core(0).cc,
        3,
        "overflow is permanent: take the fallback"
    );
    assert_eq!(sys.tx_stats(0).aborts_by_code.get(&8), Some(&1));
    // Nothing leaked to memory.
    assert_eq!(sys.mem().load_u64(Address::new(0x10_0000)), 0);
}

#[test]
fn read_footprint_survives_l1_via_lru_extension() {
    // Read 500 distinct lines transactionally: far beyond the 96KB L1's
    // 6-way tracking, but within the L2 thanks to the LRU extension
    // (§III.C). The transaction must commit.
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("handler");
    a.lghi(R5, 0x20_0000);
    a.lghi(R6, 500);
    a.label("scan");
    a.lg(R1, MemOperand::based(R5, 0));
    a.aghi(R5, 256);
    a.brctg(R6, "scan");
    a.tend();
    a.halt();
    a.label("handler");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.run_until_halt(10_000_000);
    assert_eq!(sys.core(0).cc, 0, "committed");
    assert_eq!(sys.tx_stats(0).commits, 1);
    assert_eq!(sys.tx_stats(0).aborts, 0);
}

#[test]
fn read_footprint_aborts_without_lru_extension() {
    // The same 500-line scan with the extension disabled (the Fig 5f
    // "64x6way" configuration) must hit a fetch overflow.
    let mut a = Assembler::new(0);
    a.tbegin(TbeginParams::new());
    a.jnz("handler");
    a.lghi(R5, 0x20_0000);
    a.lghi(R6, 500);
    a.label("scan");
    a.lg(R1, MemOperand::based(R5, 0));
    a.aghi(R5, 256);
    a.brctg(R6, "scan");
    a.tend();
    a.halt();
    a.label("handler");
    a.halt();
    let p = a.assemble().unwrap();
    let mut cfg = SystemConfig::with_cpus(1);
    cfg.geometry.lru_extension = false;
    let mut sys = System::new(cfg);
    sys.load_program(0, &p);
    sys.run_until_halt(10_000_000);
    assert_eq!(sys.core(0).cc, 3);
    assert_eq!(sys.tx_stats(0).aborts_by_code.get(&7), Some(&1));
}

#[test]
fn ntstg_is_isolated_until_end_but_survives_abort() {
    // CPU 0 writes an NTSTG breadcrumb then aborts itself. The breadcrumb
    // must be invisible to CPU 1 while the transaction runs (isolation) and
    // visible after the abort.
    let crumb = 0x6_0000u64;
    let flag = 0x6_1000u64;
    let mut a0 = Assembler::new(0);
    a0.tbegin(TbeginParams::new());
    a0.jnz("out");
    a0.lghi(R1, 0xAB);
    a0.ntstg(R1, MemOperand::absolute(crumb));
    a0.delay(3_000); // hold the transaction open
    a0.tabort(257);
    a0.label("out");
    a0.lghi(R2, 1);
    a0.stg(R2, MemOperand::absolute(flag)); // signal completion
    a0.halt();
    let p0 = a0.assemble().unwrap();

    // CPU 1 samples the crumb while CPU 0's transaction is open.
    let mut a1 = Assembler::new(0x1000);
    a1.delay(1_500);
    a1.lg(R5, MemOperand::absolute(crumb)); // mid-transaction sample
    a1.label("wait");
    a1.lg(R6, MemOperand::absolute(flag));
    a1.cghi(R6, 1);
    a1.jnz("wait");
    a1.lg(R7, MemOperand::absolute(crumb)); // post-abort sample
    a1.halt();
    let p1 = a1.assemble().unwrap();

    let mut cfg = SystemConfig::with_cpus(2);
    cfg.speculative_prefetch = false;
    let mut sys = System::new(cfg);
    sys.load_program(0, &p0);
    sys.load_program(1, &p1);
    sys.run_until_halt(10_000_000);
    assert_eq!(sys.core(1).gr(R5), 0, "NTSTG invisible while tx pending");
    assert_eq!(
        sys.core(1).gr(R7),
        0xAB,
        "NTSTG committed despite the abort"
    );
}

#[test]
fn constrained_retry_resumes_at_tbeginc_with_restored_registers() {
    // A constrained transaction that conflicts retries at the TBEGINC with
    // the GRSM-covered registers restored — the increment must not be
    // applied twice even though the body re-executes.
    let var = 0x7_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(R6, 200);
    a.label("loop");
    a.tbeginc(GrSaveMask::ALL);
    a.lg(R2, MemOperand::absolute(var));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(var));
    a.tend();
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();
    let mut sys = System::new(SystemConfig::with_cpus(5));
    sys.load_program_all(&p);
    sys.run_until_halt(100_000_000);
    assert_eq!(sys.mem().load_u64(Address::new(var)), 5 * 200);
}

#[test]
fn nested_transactions_commit_only_at_outermost_tend() {
    let var = 0x7_1000u64;
    let witness = 0x7_2000u64;
    // CPU 0: outer tx stores, inner tx stores, inner TEND, then spins until
    // CPU 1 confirms it still sees nothing, then outer TEND.
    let mut a0 = Assembler::new(0);
    a0.tbegin(TbeginParams::new());
    a0.jnz("done0");
    a0.lghi(R1, 1);
    a0.stg(R1, MemOperand::absolute(var));
    a0.tbegin(TbeginParams::new());
    a0.jnz("done0");
    a0.lghi(R1, 2);
    a0.stg(R1, MemOperand::absolute(var + 8));
    a0.tend(); // inner: nothing becomes visible yet
    a0.delay(3_000);
    a0.tend(); // outermost: both stores commit
    a0.label("done0");
    a0.halt();
    let p0 = a0.assemble().unwrap();

    // CPU 1 samples var+8 after the inner TEND but before the outer one.
    let mut a1 = Assembler::new(0x1000);
    a1.delay(1_500);
    a1.lg(R5, MemOperand::absolute(var + 8));
    a1.stg(R5, MemOperand::absolute(witness));
    a1.halt();
    let p1 = a1.assemble().unwrap();

    let mut cfg = SystemConfig::with_cpus(2);
    cfg.speculative_prefetch = false;
    let mut sys = System::new(cfg);
    sys.load_program(0, &p0);
    sys.load_program(1, &p1);
    sys.run_until_halt(10_000_000);
    // CPU 1's probe conflicts with the still-open outer transaction: either
    // the probe aborted CPU 0 (then nothing committed) or CPU 0 stiff-armed
    // through and committed both stores after the probe saw 0.
    let committed = sys.tx_stats(0).commits > 0;
    assert_eq!(
        sys.mem().load_u64(Address::new(0x7_2000)),
        0,
        "inner TEND must not publish stores"
    );
    if committed {
        assert_eq!(sys.mem().load_u64(Address::new(var)), 1);
        assert_eq!(sys.mem().load_u64(Address::new(var + 8)), 2);
    } else {
        assert_eq!(sys.mem().load_u64(Address::new(var)), 0);
        assert_eq!(sys.mem().load_u64(Address::new(var + 8)), 0);
    }
}

#[test]
fn instruction_fetch_faults_are_never_filtered() {
    // §II.C: "Exceptions related to instruction fetching are never
    // filtered" — otherwise a page fault on an instruction page used only
    // transactionally would never be resolved. Evict the program's text
    // page: even at PIFC 2 the OS must see the fault, page it in, and the
    // transaction must eventually commit.
    let var = 0xE_0000u64;
    let mut a = Assembler::new(0); // text occupies page 0
    a.label("retry");
    let params = TbeginParams {
        pifc: ztm::core::Pifc::DataAndAccess, // maximum filtering
        ..TbeginParams::new()
    };
    a.tbegin(params);
    a.jnz("aborted");
    a.lghi(R1, 7);
    a.stg(R1, MemOperand::absolute(var));
    a.tend();
    a.halt();
    a.label("aborted");
    a.j("retry");
    let p = a.assemble().unwrap();

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    // Let execution reach the middle of the transaction, then evict the
    // text page so the next instruction fetch faults inside the tx.
    for _ in 0..3 {
        sys.step_one();
    }
    sys.pages_mut().evict(Address::new(0).page());
    sys.run_until_halt(1_000_000);
    assert_eq!(sys.mem().load_u64(Address::new(var)), 7, "committed");
    assert!(
        sys.tx_stats(0).os_interruptions >= 1,
        "the ifetch fault reached the OS despite PIFC 2"
    );
    assert!(sys.pages_mut().is_resident(Address::new(0).page()));
}

#[test]
fn page_fault_filtering_controls_os_visibility() {
    // PIFC 2 filters the fault (no OS page-in: the page stays out and the
    // handler sees CC 3); PIFC 0 presents it (OS pages in, retry succeeds).
    let data = 0x9_0000u64;
    let build = |pifc| {
        let mut a = Assembler::new(0);
        let params = TbeginParams {
            pifc,
            ..TbeginParams::new()
        };
        a.lghi(R7, 3); // bounded retries
        a.label("retry");
        a.tbegin(params);
        a.jnz("aborted");
        a.lg(R1, MemOperand::absolute(data));
        a.tend();
        a.halt();
        a.label("aborted");
        a.brctg(R7, "retry");
        a.halt();
        a.assemble().unwrap()
    };

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.pages_mut().evict(Address::new(data).page());
    sys.load_program(0, &build(ztm::core::Pifc::DataAndAccess));
    sys.run_until_halt(1_000_000);
    assert!(!sys.pages_mut().is_resident(Address::new(data).page()));
    assert_eq!(sys.tx_stats(0).commits, 0, "filtered fault loops forever");
    assert_eq!(sys.tx_stats(0).filtered_exceptions, 3);

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.mem_mut().store_u64(Address::new(data), 0x5555);
    sys.pages_mut().evict(Address::new(data).page());
    sys.load_program(0, &build(ztm::core::Pifc::None));
    sys.run_until_halt(1_000_000);
    assert_eq!(sys.core(0).gr(R1), 0x5555, "OS serviced the fault");
    assert_eq!(sys.tx_stats(0).os_interruptions, 1);
}
