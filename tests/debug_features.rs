//! The RAS/debug features of §II.E on the full system: diagnostic-control
//! forced aborts, PER suppression and the TEND event, and the prefix-area
//! TDB copy.

use ztm::core::{DiagnosticControl, ProgramException, TbeginParams, Tdb};
use ztm::isa::{gr::*, Assembler, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};
use ztm::workloads::pool::{PoolLayout, PoolWorkload, SyncMethod};

#[test]
fn tdc_always_abort_forces_the_fallback_path_and_stays_correct() {
    // §II.E.3: the aggressive setting aborts every transaction before the
    // outermost TEND, stressing the retry threshold and the fallback path.
    // Correctness must be preserved — every op completes via the lock.
    let mut cfg = SystemConfig::with_cpus(3);
    cfg.engine.diagnostic = DiagnosticControl::AlwaysAbort { max_point: 50 };
    let mut sys = System::new(cfg);
    let wl = PoolWorkload::new(PoolLayout::new(8, 1), SyncMethod::Tbegin, 0);
    let rep = wl.run(&mut sys, 25);
    assert_eq!(rep.committed_ops(), 75);
    assert_eq!(wl.pool_sum(&sys), 75);
    assert_eq!(rep.system.tx.commits, 0, "no transaction may commit");
    assert!(
        rep.system.tx.aborts >= 75 * 6,
        "six retries per op, all forced"
    );
}

#[test]
fn tdc_random_aborts_keep_workloads_correct() {
    // The lighter setting aborts often at random points; transactions still
    // commit sometimes, and the mix of tx and fallback completions must be
    // exactly correct.
    let mut cfg = SystemConfig::with_cpus(4);
    cfg.engine.diagnostic = DiagnosticControl::Random { denominator: 8 };
    let mut sys = System::new(cfg);
    let wl = PoolWorkload::new(PoolLayout::new(16, 1), SyncMethod::Tbegin, 1);
    let rep = wl.run(&mut sys, 30);
    assert_eq!(wl.pool_sum(&sys), 120);
    assert!(rep.system.tx.aborts > 0);
    assert!(
        rep.system.tx.aborts_by_code.contains_key(&255),
        "diagnostic aborts use code 255: {:?}",
        rep.system.tx.aborts_by_code
    );
}

#[test]
fn tdc_aggressive_setting_spares_constrained_transactions() {
    // §II.E.3: "the latter setting is treated like the less aggressive
    // setting for constrained transactions" — they must still complete.
    let mut cfg = SystemConfig::with_cpus(2);
    cfg.engine.diagnostic = DiagnosticControl::AlwaysAbort { max_point: 50 };
    let mut sys = System::new(cfg);
    let wl = PoolWorkload::new(PoolLayout::new(8, 1), SyncMethod::Tbeginc, 2);
    let rep = wl.run(&mut sys, 20);
    assert_eq!(wl.pool_sum(&sys), 40);
    assert!(
        rep.system.tx.commits >= 40,
        "constrained transactions commit"
    );
}

#[test]
fn per_event_suppression_lets_transactions_complete_under_single_step() {
    // §II.E.2: a debugger single-stepping (ifetch PER over everything)
    // would abort every transaction at its first instruction; suppression
    // makes the whole transaction one "big instruction".
    let var = 0xA_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(R6, 5);
    a.label("loop");
    a.tbeginc(ztm::core::GrSaveMask::ALL);
    a.lg(R2, MemOperand::absolute(var));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(var));
    a.tend();
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.core_mut(0).per.enabled = true;
    sys.core_mut(0).per.event_suppression = true;
    sys.core_mut(0).per.ifetch_range = Some((0, u64::MAX));
    sys.run_until_halt(1_000_000);
    assert_eq!(sys.mem().load_u64(Address::new(var)), 5);
    assert_eq!(sys.tx_stats(0).commits, 5);
    // Events still fire outside transactions.
    assert!(sys.core(0).per_events > 0);
}

#[test]
fn per_tend_event_enables_transaction_granular_watchpoints() {
    // §II.E.2: with suppression + the TEND event, a debugger checks its
    // watch-points once per transaction instead of aborting them.
    let var = 0xB_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(R6, 7);
    a.label("loop");
    a.tbeginc(ztm::core::GrSaveMask::ALL);
    a.lg(R2, MemOperand::absolute(var));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(var));
    a.tend();
    a.brctg(R6, "loop");
    a.halt();
    let p = a.assemble().unwrap();

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.core_mut(0).per.enabled = true;
    sys.core_mut(0).per.event_suppression = true;
    sys.core_mut(0).per.tend_event = true;
    sys.core_mut(0).per.store_range = Some((var, var + 7)); // watch-point
    sys.run_until_halt(1_000_000);
    assert_eq!(sys.mem().load_u64(Address::new(var)), 7);
    assert_eq!(
        sys.core(0).per_events,
        7,
        "exactly one TEND event per committed transaction"
    );
}

#[test]
fn prefix_area_receives_tdb_copy_on_program_interruption_abort() {
    // §II.E.1: on aborts caused by a program interruption, a second TDB
    // copy lands in the CPU prefix area for post-mortem analysis.
    let data = 0xC_0000u64;
    let mut a = Assembler::new(0);
    a.label("retry");
    a.tbegin(TbeginParams::new()); // PIFC 0: fault presented to the OS
    a.jnz("aborted");
    a.lg(R1, MemOperand::absolute(data));
    a.tend();
    a.halt();
    a.label("aborted");
    a.j("retry");
    let p = a.assemble().unwrap();

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.pages_mut().evict(Address::new(data).page());
    sys.load_program(0, &p);
    sys.run_until_halt(1_000_000);
    // CPU 0's prefix area (see System) holds the TDB copy.
    let tdb = Tdb::load_from(sys.mem(), Address::new(0xFFFF_0000));
    assert_eq!(tdb.abort_code(), 4, "unfiltered program interruption");
    assert_eq!(
        tdb.program_interruption_code(),
        ProgramException::PageFault { address: data }.interruption_code()
    );
    assert_eq!(tdb.translation_address(), data);
}

#[test]
fn watchpoint_store_event_aborts_transaction_without_suppression() {
    // A store watch-point inside a transaction (no suppression): the store
    // triggers a PER event, the transaction aborts, and the OS observes it.
    let var = 0xD_0000u64;
    let mut a = Assembler::new(0);
    a.lghi(R7, 2); // two attempts, then give up
    a.label("retry");
    a.tbegin(TbeginParams::new());
    a.jnz("aborted");
    a.lghi(R1, 5);
    a.stg(R1, MemOperand::absolute(var));
    a.tend();
    a.halt();
    a.label("aborted");
    a.brctg(R7, "retry");
    a.halt();
    let p = a.assemble().unwrap();

    let mut sys = System::new(SystemConfig::with_cpus(1));
    sys.load_program(0, &p);
    sys.core_mut(0).per.enabled = true;
    sys.core_mut(0).per.store_range = Some((var, var + 7));
    sys.run_until_halt(1_000_000);
    assert_eq!(
        sys.tx_stats(0).commits,
        0,
        "every attempt hit the watch-point"
    );
    assert!(sys.core(0).per_events >= 2);
    assert_eq!(
        sys.mem().load_u64(Address::new(var)),
        0,
        "stores rolled back"
    );
}
