//! Differential and serializability tests for the TL2 software-TM layer
//! (`ztm-stm`).
//!
//! The STM runs *as emitted programs on the simulated ISA*, so its
//! correctness claims are checked the same way the hardware TM's are:
//! against a sequential oracle (every committed history must equal some
//! serial order), against a snapshot-consistency probe (no transaction may
//! observe a torn view), and in per-step lockstep between the legacy and
//! predecoded interpreters with trace-digest equality (determinism).

use proptest::prelude::*;
use ztm::isa::gr::*;
use ztm::isa::{Assembler, Program};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};
use ztm::stm::{Stm, StmLayout};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};

const BANK_BASE: u64 = 0x5000_0000;

/// Lowers a fixed transfer list into a straight-line program where each
/// transfer is one software transaction (addresses and amounts are
/// immediates, so the host-side oracle can replay the exact sequence).
fn transfer_program(stm: &Stm, transfers: &[(u64, u64, u64)]) -> Program {
    let mut a = Assembler::new(0);
    for (i, &(from, to, amount)) in transfers.iter().enumerate() {
        a.lghi(R8, (BANK_BASE + from * 256) as i64);
        a.lghi(R9, (BANK_BASE + to * 256) as i64);
        a.lghi(R10, amount as i64);
        stm.emit_tx(&mut a, &format!("t{i}"), &[], |tx| {
            tx.read(R2, R8);
            tx.asm().sgr(R2, R10);
            tx.write(R2, R8);
            tx.read(R2, R9);
            tx.asm().agr(R2, R10);
            tx.write(R2, R9);
        });
    }
    a.halt();
    a.assemble().expect("transfer program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Single-CPU oracle: a random transfer sequence committed through the
    /// STM (read-set validation, write-set buffering, RAW forwarding on
    /// self-transfers, commit write-back) must leave memory exactly as the
    /// host-side sequential replay does — account by account.
    #[test]
    fn stm_transfers_match_the_sequential_oracle(
        transfers in proptest::collection::vec((0u64..8, 0u64..8, 0u64..100), 1..24),
        stripes in prop::sample::select(vec![2u64, 8, 1024]),
    ) {
        let stm = Stm::with_layout(StmLayout::with_stripes(stripes));
        let mut sys = System::new(SystemConfig::with_cpus(1).seed(9));
        let mut oracle = [1_000u64; 8];
        for i in 0..8u64 {
            sys.mem_mut().store_u64(Address::new(BANK_BASE + i * 256), 1_000);
        }
        let prog = transfer_program(&stm, &transfers);
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(200_000_000);
        for &(from, to, amount) in &transfers {
            oracle[from as usize] = oracle[from as usize].wrapping_sub(amount);
            oracle[to as usize] = oracle[to as usize].wrapping_add(amount);
        }
        for (i, &want) in oracle.iter().enumerate() {
            let got = sys.mem().load_u64(Address::new(BANK_BASE + i as u64 * 256));
            prop_assert_eq!(got, want, "account {} diverged from the oracle", i);
        }
        let r = sys.report();
        prop_assert_eq!(r.stm.commits, transfers.len() as u64);
        prop_assert_eq!(r.stm.aborts, 0, "single CPU never conflicts");
    }

    /// Contended serializability: several CPUs hammer random transfers over
    /// a deliberately tiny stripe table (false conflicts force the
    /// validation-failure and retry paths), and the committed history must
    /// still conserve the total — the transfer workload's one-line
    /// serializability witness.
    #[test]
    fn contended_stm_transfers_conserve_money(
        cpus in 2usize..5,
        stripes in prop::sample::select(vec![2u64, 4, 16]),
        seed in 0u64..64,
    ) {
        let accounts = 8u64;
        let ops = 12u64;
        let stm = Stm::with_layout(StmLayout::with_stripes(stripes));
        let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(seed));
        for i in 0..accounts {
            sys.mem_mut().store_u64(Address::new(BANK_BASE + i * 256), 1_000);
        }
        let mut a = Assembler::new(0);
        a.lghi(R6, ops as i64);
        a.label("loop");
        a.rand_mod(R8, ztm::isa::RegOrImm::Imm(accounts));
        a.rand_mod(R9, ztm::isa::RegOrImm::Imm(accounts));
        a.rand_mod(R10, ztm::isa::RegOrImm::Imm(100));
        a.sllg(R8, R8, 8);
        a.aghi(R8, BANK_BASE as i64);
        a.sllg(R9, R9, 8);
        a.aghi(R9, BANK_BASE as i64);
        stm.emit_tx(&mut a, "xfer", &[], |tx| {
            tx.read(R2, R8);
            tx.asm().sgr(R2, R10);
            tx.write(R2, R8);
            tx.read(R2, R9);
            tx.asm().agr(R2, R10);
            tx.write(R2, R9);
        });
        a.brctg(R6, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        sys.load_program_all(&prog);
        stm.layout.install(&mut sys);
        sys.run_until_halt(2_000_000_000);
        let total: u64 = (0..accounts)
            .map(|i| sys.mem().load_u64(Address::new(BANK_BASE + i * 256)))
            .sum();
        prop_assert_eq!(total, accounts * 1_000, "serializability violated");
        let r = sys.report();
        prop_assert_eq!(r.stm.commits, cpus as u64 * ops);
        // Every stripe ends unlocked.
        for s in 0..stm.layout.stripes {
            let w = sys.mem().load_u64(Address::new(stm.layout.stripe_lock_addr(s * 8)));
            prop_assert_eq!(w >> 63, 0, "stripe {} left locked", s);
        }
    }
}

/// Snapshot consistency: a writer keeps the pair `(X, Y)` equal inside one
/// transaction (two different stripes); concurrent read-only transactions
/// load both and raise a flag on any inequality. TL2's per-read
/// post-validation must make a torn view impossible.
#[test]
fn read_only_transactions_never_see_a_torn_pair() {
    const X: u64 = 0x8000;
    const Y: u64 = 0x8008; // adjacent word: a different stripe from X
    const FLAG: u64 = 0x8200;
    const ROUNDS: i64 = 60;
    let stm = Stm::new();
    assert_ne!(
        stm.layout.stripe_lock_addr(X),
        stm.layout.stripe_lock_addr(Y),
        "the probe needs the pair on two stripes"
    );
    let mut sys = System::new(SystemConfig::with_cpus(3).seed(21));
    let mut a = Assembler::new(0);
    a.lghi(R6, ROUNDS);
    a.cghi(R7, 0);
    a.jnz("reader");
    // Writer: X and Y move together, atomically.
    a.label("w_loop");
    a.lghi(R8, X as i64);
    a.lghi(R9, Y as i64);
    stm.emit_tx(&mut a, "w", &[], |tx| {
        tx.read(R2, R8);
        tx.asm().aghi(R2, 1);
        tx.write(R2, R8);
        tx.write(R2, R9);
    });
    a.brctg(R6, "w_loop");
    a.halt();
    // Readers: load the pair in one transaction, park the values past the
    // commit's scratch registers, flag any mismatch.
    a.label("reader");
    a.label("r_loop");
    a.lghi(R8, X as i64);
    a.lghi(R9, Y as i64);
    stm.emit_tx(&mut a, "r", &[], |tx| {
        tx.read(R2, R8);
        tx.asm().lgr(R12, R2);
        tx.read(R2, R9);
        tx.asm().lgr(R13, R2);
    });
    a.cgr(R12, R13);
    a.jz("r_ok");
    a.lghi(R2, 1);
    a.stg(R2, ztm::isa::MemOperand::absolute(FLAG));
    a.label("r_ok");
    a.brctg(R6, "r_loop");
    a.halt();
    let prog = a.assemble().unwrap();
    sys.load_program_all(&prog);
    stm.layout.install(&mut sys);
    sys.core_mut(0).set_gr(R7, 0); // writer
    sys.core_mut(1).set_gr(R7, 1); // reader
    sys.core_mut(2).set_gr(R7, 1); // reader
    sys.run_until_halt(2_000_000_000);
    assert_eq!(
        sys.mem().load_u64(Address::new(FLAG)),
        0,
        "a read-only transaction observed a torn (X, Y) pair"
    );
    assert_eq!(
        sys.mem().load_u64(Address::new(X)),
        ROUNDS as u64,
        "every writer round committed"
    );
    assert_eq!(
        sys.mem().load_u64(Address::new(X)),
        sys.mem().load_u64(Address::new(Y))
    );
}

/// Builds a PureStm hashtable system for the interpreter differential.
fn stm_table_system(legacy: bool) -> (System, std::sync::Arc<std::sync::Mutex<Recorder>>) {
    let t = HashTable::new(256, 1024, 30, TableMethod::PureStm);
    let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
    sys.set_legacy_interpreter(legacy);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
    t.run(&mut sys, 40);
    (sys, recorder)
}

/// The STM's emitted programs (CSG loops, stripe arithmetic, STM_NOTE
/// markers) must behave identically under the legacy `Instr` walk and the
/// predecoded dispatch, down to the trace digest.
#[test]
fn stm_workload_agrees_across_interpreters() {
    let (fast, fast_rec) = stm_table_system(false);
    let (slow, slow_rec) = stm_table_system(true);
    assert_eq!(fast.report().steps, slow.report().steps);
    assert_eq!(fast.report().stm, slow.report().stm);
    assert!(fast.report().stm.commits >= 160);
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
}

/// Identically seeded hybrid runs are bit-identical: same trace digest,
/// same commit/fallback split. This pins the determinism of the whole
/// HTM-fast-path + STM-fallback machinery (incl. PPA backoff and the
/// transactional clock claim).
#[test]
fn hybrid_runs_are_deterministic() {
    let run = || {
        let t = HashTable::new(256, 1024, 30, TableMethod::HtmStmFallback);
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(7));
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..128).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 40);
        let digest = recorder.lock().unwrap().digest();
        (
            rep.system.steps,
            rep.system.stm.clone(),
            rep.system.tx.commits,
            digest,
        )
    };
    assert_eq!(run(), run());
}
