//! Differential tests for line-window access coalescing.
//!
//! Coalescing (`System::set_coalescing`, escape hatch `ZTM_NO_COALESCE=1`)
//! elides the directory walk for consecutive accesses to the same data line.
//! It is a host-speed optimization with *zero* simulated effect, and these
//! tests pin that: a coalescing system and a full-walk system must agree on
//! every single step (scheduled CPU, `StepOutcome`, broadcast-stop) and on
//! the trace digest at the end, across XI traffic, transaction boundaries,
//! speculative prefetches, and page-residency churn.

use proptest::prelude::*;
use std::sync::Arc;
use std::sync::Mutex;
use ztm::core::TbeginParams;
use ztm::isa::gr::*;
use ztm::isa::{Assembler, MemOperand, Program};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};
use ztm::trace::{Recorder, Tracer};
use ztm::workloads::hashtable::{HashTable, TableMethod};

/// A contended-counter program shaped to exercise every coalescing case:
/// non-tx same-line fetch bursts (struct walks), same-line store bursts
/// (adjacent stack pushes), a contended read-modify-write line (XI traffic
/// invalidating windows), and a transaction whose body revisits one line at
/// several offsets with both access classes (tx-mark gating).
fn counter_program() -> Program {
    let mut a = Assembler::new(0);
    a.lghi(R6, 200);
    a.label("loop");
    // Field-by-field reads of one "struct" line.
    for k in 0..4 {
        a.lg(R1, MemOperand::absolute(0x8000 + k * 8));
    }
    // Contended read-modify-write on a line every CPU writes.
    a.lg(R2, MemOperand::absolute(0x1000));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(0x1000));
    // Adjacent same-line stores (the exclusive-window case).
    for k in 0..4 {
        a.stg(R2, MemOperand::absolute(0x9000 + k * 8));
    }
    // A transaction revisiting one line at several offsets, fetch then
    // store (the first store must take the full walk to set tx-dirty, the
    // rest may coalesce).
    a.tbegin(TbeginParams::new());
    a.jnz("fallback");
    for k in 0..4 {
        a.lg(R3, MemOperand::absolute(0xA000 + k * 8));
    }
    a.aghi(R3, 1);
    for k in 0..4 {
        a.stg(R3, MemOperand::absolute(0xA020 + k * 8));
    }
    a.tend();
    a.j("joined");
    a.label("fallback");
    a.ppa(R0);
    a.delay(16);
    a.label("joined");
    a.brctg(R6, "loop");
    a.halt();
    a.assemble().expect("counter program assembles")
}

/// Builds a 4-CPU system running [`counter_program`] with a recording
/// tracer, coalescing on or off.
fn counter_system(coalesce: bool) -> (System, Arc<Mutex<Recorder>>) {
    let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
    sys.set_coalescing(coalesce);
    let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
    sys.set_tracer(tracer);
    sys.load_program_all(&counter_program());
    (sys, recorder)
}

/// The coalesced and full-walk paths must agree on every single step: same
/// CPU scheduled, same [`ztm::isa::StepOutcome`], and the same trace digest
/// at the end — while the coalescing side actually coalesces.
#[test]
fn coalesced_and_full_walk_step_identically() {
    let (mut fast, fast_rec) = counter_system(true);
    let (mut slow, slow_rec) = counter_system(false);
    let mut steps = 0u64;
    loop {
        let a = fast.step_one();
        let b = slow.step_one();
        assert_eq!(a, b, "divergence at step {steps}");
        steps += 1;
        if a.is_none() {
            break;
        }
        assert!(steps < 2_000_000, "counter program failed to halt");
    }
    assert!(
        steps > 10_000,
        "program too short to be a meaningful differential"
    );
    assert_eq!(
        fast_rec.lock().unwrap().digest(),
        slow_rec.lock().unwrap().digest()
    );
    assert!(
        fast.report().coalesced_accesses > 0,
        "the coalescing side never took the fast path"
    );
    assert_eq!(slow.report().coalesced_accesses, 0);
}

/// Same check through a full workload driver (the lock-elided hashtable of
/// Fig 5(e)), where aborts, retries, and the fallback lock all fire.
#[test]
fn coalesced_and_full_walk_agree_on_the_elision_hashtable() {
    let run = |coalesce: bool| {
        let t = HashTable::new(512, 2048, 20, TableMethod::Elision);
        let mut sys = System::new(SystemConfig::with_cpus(4).seed(42));
        sys.set_coalescing(coalesce);
        let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
        sys.set_tracer(tracer);
        t.populate(&mut sys, &(0..256).collect::<Vec<_>>());
        let rep = t.run(&mut sys, 60);
        let digest = recorder.lock().unwrap().digest();
        (rep.system.steps, digest)
    };
    assert_eq!(run(true), run(false));
}

/// Lowers a random op stream into a straight-line program over two adjacent
/// lines (A at 0x8000, B at 0x8100 — B is also A's speculative-prefetch
/// target). TBEGIN has no fallback branch: an aborted transaction simply
/// falls through and re-runs the rest non-transactionally, and a TEND with
/// no transaction is a handled no-op — both deterministic, which is all the
/// differential needs.
fn burst_program(ops: &[(u8, u8)]) -> Program {
    let mut a = Assembler::new(0);
    let mut depth = 0u32;
    for &(kind, off) in ops {
        let at = |base: u64| MemOperand::absolute(base + off as u64 * 8);
        match kind {
            0 => {
                a.lg(R1, at(0x8000));
            }
            1 => {
                a.stg(R1, at(0x8000));
            }
            2 => {
                a.lg(R2, at(0x8100));
            }
            3 => {
                a.stg(R2, at(0x8100));
            }
            4 => {
                a.tbegin(TbeginParams::new());
                depth += 1;
            }
            5 => {
                if depth > 0 {
                    a.tend();
                    depth -= 1;
                }
            }
            _ => {
                a.aghi(R3, 1);
            }
        }
    }
    while depth > 0 {
        a.tend();
        depth -= 1;
    }
    a.halt();
    a.assemble().expect("burst program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Random same-line access bursts crossing transaction boundaries, XIs
    /// (several CPUs share the two lines), speculative prefetches, and
    /// page-epoch bumps injected mid-run: the coalesced and full-walk
    /// systems must stay in lockstep on every step and end with the same
    /// digest.
    #[test]
    fn random_bursts_agree_per_step(
        ops in proptest::collection::vec((0u8..7, 0u8..32), 1..80),
        cpus in 1usize..4,
    ) {
        let prog = burst_program(&ops);
        let build = |coalesce: bool| {
            let mut sys = System::new(SystemConfig::with_cpus(cpus).seed(42));
            sys.set_coalescing(coalesce);
            let (tracer, recorder) = Tracer::recording(Recorder::DEFAULT_CAPACITY);
            sys.set_tracer(tracer);
            sys.load_program_all(&prog);
            (sys, recorder)
        };
        let (mut fast, fast_rec) = build(true);
        let (mut slow, slow_rec) = build(false);
        let page = Address::new(0x8000).page();
        let mut steps = 0u64;
        loop {
            // Page-residency churn at fixed step counts, identically on
            // both systems: an evicted page faults the next access (the OS
            // pages it back in), and every evict/page-in bumps the epoch
            // that validates armed line windows.
            if steps % 53 == 17 {
                fast.pages_mut().evict(page);
                slow.pages_mut().evict(page);
            }
            if steps % 53 == 30 {
                fast.pages_mut().page_in(page);
                slow.pages_mut().page_in(page);
            }
            let a = fast.step_one();
            let b = slow.step_one();
            prop_assert_eq!(&a, &b, "divergence at step {}", steps);
            steps += 1;
            if a.is_none() {
                break;
            }
            prop_assert!(steps < 500_000, "burst program failed to halt");
        }
        prop_assert_eq!(fast_rec.lock().unwrap().digest(), slow_rec.lock().unwrap().digest());
        prop_assert_eq!(slow.report().coalesced_accesses, 0);
    }
}
