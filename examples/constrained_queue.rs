//! Constrained transactions on a concurrent queue (§II.D + §IV).
//!
//! Constrained transactions are guaranteed to eventually succeed, so the
//! queue operations need **no fallback path** — the code is as simple as the
//! paper's Figure 3. This example runs the queue under a global lock and
//! under TBEGINC and verifies the structure stays intact either way.
//!
//! ```sh
//! cargo run --release --example constrained_queue
//! ```

use ztm::sim::{System, SystemConfig};
use ztm::workloads::queue::{ConcurrentQueue, QueueMethod};

fn main() {
    let cpus = 8;
    let ops = 400;
    println!("Concurrent queue, {cpus} CPUs x {ops} enqueue/dequeue pairs");
    println!();
    for (name, method) in [
        ("global lock", QueueMethod::Lock),
        ("TBEGINC    ", QueueMethod::Tbeginc),
    ] {
        let queue = ConcurrentQueue::new(method);
        let mut sys = System::new(SystemConfig::with_cpus(cpus));
        queue.seed(&mut sys, 64);
        let rep = queue.run(&mut sys, ops);
        let len = queue.len(&sys);
        println!(
            "{name}: throughput {:.6} ops/cycle, queue length {len} (seeded 64), \
             commits {}, aborts {}",
            rep.throughput(),
            rep.system.tx.commits,
            rep.system.tx.aborts,
        );
        assert_eq!(len, 64, "every enqueue paired with a dequeue");
    }
    println!();
    println!("Note: the TBEGINC path contains no fallback code at all — the");
    println!("machine (millicode retry ladder, §III.E) guarantees completion.");
}
