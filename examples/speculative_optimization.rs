//! Speculative program optimization with interruption filtering (§II.C).
//!
//! The paper's motivating compiler use case: instead of guarding every
//! division with a zero check, execute it speculatively inside a
//! transaction with PIFC 1 (data-exception filtering). In the common case
//! the check is simply gone; in the rare divisor-is-zero case the
//! transaction aborts with CC 3 — without trapping into the OS — and the
//! abort handler runs the slow checked path.
//!
//! ```sh
//! cargo run --release --example speculative_optimization
//! ```

use ztm::core::{Pifc, TbeginParams};
use ztm::isa::{gr::*, Assembler, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};

const DIVIDENDS: u64 = 0x1_0000;
const DIVISORS: u64 = 0x2_0000;
const RESULTS: u64 = 0x3_0000;
const COUNT: i64 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut a = Assembler::new(0);
    a.lghi(R6, COUNT);
    a.lghi(R5, 0); // element index * 8
    a.label("loop");
    // Speculative fast path: no zero check before the divide.
    let params = TbeginParams {
        pifc: Pifc::Data, // filter arithmetic exceptions (§II.C group 4)
        ..TbeginParams::new()
    };
    a.tbegin(params);
    a.jnz("slow_path");
    a.lg(R1, MemOperand::indexed(R5, R0, DIVIDENDS as i64));
    a.lg(R2, MemOperand::indexed(R5, R0, DIVISORS as i64));
    a.push(ztm::isa::Instr::Dsgr(R1, R2)); // may divide by zero!
    a.stg(R1, MemOperand::indexed(R5, R0, RESULTS as i64));
    a.tend();
    a.j("next");
    a.label("slow_path");
    // Rare case: checked division (zero divisor → store 0).
    a.lg(R1, MemOperand::indexed(R5, R0, DIVIDENDS as i64));
    a.lg(R2, MemOperand::indexed(R5, R0, DIVISORS as i64));
    a.cghi(R2, 0);
    a.jnz("checked_div");
    a.lghi(R1, 0);
    a.j("store_slow");
    a.label("checked_div");
    a.push(ztm::isa::Instr::Dsgr(R1, R2));
    a.label("store_slow");
    a.stg(R1, MemOperand::indexed(R5, R0, RESULTS as i64));
    a.label("next");
    a.aghi(R5, 8);
    a.brctg(R6, "loop");
    a.halt();
    let prog = a.assemble()?;

    let mut sys = System::new(SystemConfig::with_cpus(1));
    // R0 stays 0 (no base register for the tables). Fill the input tables:
    // divisor is zero every 8th element.
    for i in 0..COUNT as u64 {
        sys.mem_mut()
            .store_u64(Address::new(DIVIDENDS + i * 8), 1000 + i * 3);
        let divisor = if i % 8 == 7 { 0 } else { 1 + i % 5 };
        sys.mem_mut()
            .store_u64(Address::new(DIVISORS + i * 8), divisor);
    }
    sys.load_program(0, &prog);
    sys.run_until_halt(10_000_000);

    let stats = sys.tx_stats(0);
    println!("elements           : {COUNT}");
    println!("fast-path commits  : {}", stats.commits);
    println!("filtered exceptions: {}", stats.filtered_exceptions);
    println!("OS interruptions   : {}", stats.os_interruptions);
    println!();
    for i in [0u64, 7, 8, 15] {
        let dividend = 1000 + i * 3;
        let divisor = if i % 8 == 7 { 0 } else { 1 + i % 5 };
        let result = sys.mem().load_u64(Address::new(RESULTS + i * 8));
        println!("  {dividend:>5} / {divisor} = {result}");
    }
    assert_eq!(stats.commits, 56, "7 of every 8 take the fast path");
    assert_eq!(stats.filtered_exceptions, 8, "zero divisors filtered");
    assert_eq!(stats.os_interruptions, 0, "the OS never saw a trap");
    for i in 0..COUNT as u64 {
        let expect = if i % 8 == 7 {
            0
        } else {
            (1000 + i * 3) / (1 + i % 5)
        };
        assert_eq!(sys.mem().load_u64(Address::new(RESULTS + i * 8)), expect);
    }
    println!();
    println!("Every result is correct; the zero check ran only on the 12.5%");
    println!("of elements that actually needed it (§II.C's 'penalize the");
    println!("rare case only').");
    Ok(())
}
