//! Lock elision on a shared hashtable (the Fig 5(e) experiment, §IV).
//!
//! Runs the same hashtable workload twice — under a global lock and with the
//! lock elided by transactions — and compares throughput, demonstrating the
//! paper's headline software use case: existing lock-based code speeds up
//! without a redesign.
//!
//! ```sh
//! cargo run --release --example lock_elision
//! ```

use ztm::sim::{System, SystemConfig};
use ztm::workloads::hashtable::{HashTable, TableMethod};

fn run(method: TableMethod, threads: usize) -> (f64, u64, u64) {
    let table = HashTable::new(512, 2048, 20, method);
    let mut sys = System::new(SystemConfig::with_cpus(threads));
    table.populate(&mut sys, &(0..1024).collect::<Vec<_>>());
    let rep = table.run(&mut sys, 300);
    (
        rep.throughput(),
        rep.system.tx.commits,
        rep.system.tx.aborts,
    )
}

fn main() {
    println!("Lock-elided hashtable: 512 buckets, 20% puts, 6 threads");
    println!();
    let threads = 6;
    let (lock_thpt, _, _) = run(TableMethod::GlobalLock, threads);
    let (tx_thpt, commits, aborts) = run(TableMethod::Elision, threads);
    println!("global lock : throughput {lock_thpt:.6} ops/cycle");
    println!("lock elision: throughput {tx_thpt:.6} ops/cycle");
    println!("              {commits} transactions committed, {aborts} aborted");
    println!();
    println!(
        "speedup from elision: {:.2}x (the paper reports near-linear scaling\n\
         for the elided java/util/Hashtable while locks stay flat)",
        tx_thpt / lock_thpt
    );
}
