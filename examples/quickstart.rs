//! Quickstart: run a transactional program on the simulated zEC12 SMP.
//!
//! Builds the paper's Figure 1 kernel (transactional increment with a lock
//! fallback), runs it on four CPUs, and prints what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ztm::core::TbeginParams;
use ztm::isa::{gr::*, Assembler, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const COUNTER: u64 = 0x1_0000;
    const LOCK: u64 = 0x2_0000;
    const OPS_PER_CPU: i64 = 1000;

    // The Figure 1 shape: begin a transaction, test the fallback lock,
    // update, commit; on abort retry up to 6 times with PPA back-off, then
    // fall back to the lock.
    let mut a = Assembler::new(0);
    a.lghi(R6, OPS_PER_CPU);
    a.label("next_op");
    a.lghi(R0, 0); // retry count
    a.label("loop");
    a.tbegin(TbeginParams::new());
    a.jnz("abort");
    a.ltg(R1, MemOperand::absolute(LOCK));
    a.jnz("lckbzy");
    a.lg(R2, MemOperand::absolute(COUNTER));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(COUNTER));
    a.tend();
    a.j("done");
    a.label("lckbzy");
    a.tabort(256); // transient: retry once the lock is free
    a.label("abort");
    a.jo("fallback"); // CC3 → permanent: no retry
    a.aghi(R0, 1);
    a.cgij_ge(R0, 6, "fallback");
    a.ppa(R0); // machine-owned random back-off
    a.j("loop");
    a.label("fallback");
    a.lghi(R3, 0);
    a.lghi(R4, 1);
    a.label("spin");
    a.lgr(R5, R3);
    a.csg(R5, R4, MemOperand::absolute(LOCK));
    a.jnz("spin");
    a.lg(R2, MemOperand::absolute(COUNTER));
    a.aghi(R2, 1);
    a.stg(R2, MemOperand::absolute(COUNTER));
    a.lghi(R5, 0);
    a.stg(R5, MemOperand::absolute(LOCK));
    a.label("done");
    a.brctg(R6, "next_op");
    a.halt();
    let program = a.assemble()?;

    let cpus = 4;
    let mut system = System::new(SystemConfig::with_cpus(cpus));
    system.load_program_all(&program);
    system.run_until_halt(200_000_000);

    let counter = system.mem().load_u64(Address::new(COUNTER));
    let report = system.report();
    println!(
        "counter            : {counter} (expected {})",
        cpus as i64 * OPS_PER_CPU
    );
    println!("elapsed cycles     : {}", report.elapsed_cycles);
    println!("commits            : {}", report.tx.commits);
    println!("aborts             : {}", report.tx.aborts);
    println!("abort codes        : {:?}", report.tx.aborts_by_code);
    println!("XI-stall retries   : {}", report.stalls);
    println!("XIs [excl, demote, ro, lru]: {:?}", report.xi_counts);
    assert_eq!(counter, cpus as u64 * OPS_PER_CPU as u64);
    println!("atomicity verified: no increment was lost or duplicated");
    Ok(())
}
