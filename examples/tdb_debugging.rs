//! Transactional debugging features (§II.E): the Transaction Diagnostic
//! Block, NTSTG breadcrumbs, and diagnostic-control forced aborts.
//!
//! A transaction conflicts with another CPU; the abort handler inspects the
//! TDB (abort code, conflict token, registers at abort) and the NTSTG
//! breadcrumbs that survived the rollback — exactly the post-mortem
//! workflow the paper designed for enterprise software.
//!
//! ```sh
//! cargo run --release --example tdb_debugging
//! ```

use ztm::core::{TbeginParams, Tdb};
use ztm::isa::{gr::*, Assembler, MemOperand};
use ztm::mem::Address;
use ztm::sim::{System, SystemConfig};

const SHARED: u64 = 0x5_0000;
const TDB_ADDR: u64 = 0x8_0000;
const CRUMBS: u64 = 0x9_0000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CPU 0: a transaction that reads SHARED, drops a breadcrumb for each
    // phase it reaches, then spins inside the transaction until CPU 1's
    // store conflicts and aborts it.
    let mut a0 = Assembler::new(0);
    let params = TbeginParams {
        tdb: Some(Address::new(TDB_ADDR)),
        ..TbeginParams::new()
    };
    a0.tbegin(params);
    a0.jnz("aborted");
    a0.lghi(R1, 1);
    a0.ntstg(R1, MemOperand::absolute(CRUMBS)); // phase 1 reached
    a0.lg(R2, MemOperand::absolute(SHARED)); // join the read set
    a0.lghi(R1, 2);
    a0.ntstg(R1, MemOperand::absolute(CRUMBS + 8)); // phase 2 reached
    a0.label("spin"); // hold the transaction open
    a0.lg(R3, MemOperand::absolute(SHARED));
    a0.cghi(R3, 0);
    a0.jz("spin");
    a0.tend();
    a0.halt();
    a0.label("aborted");
    a0.halt();
    let p0 = a0.assemble()?;

    // CPU 1: wait, then store to SHARED (a plain, non-transactional store —
    // strong atomicity makes it conflict with CPU 0's read set).
    let mut a1 = Assembler::new(0x1000);
    a1.delay(3_000);
    a1.lghi(R1, 42);
    a1.stg(R1, MemOperand::absolute(SHARED));
    a1.halt();
    let p1 = a1.assemble()?;

    let mut cfg = SystemConfig::with_cpus(2);
    cfg.speculative_prefetch = false;
    let mut sys = System::new(cfg);
    sys.load_program(0, &p0);
    sys.load_program(1, &p1);
    sys.run_until_halt(10_000_000);

    // Post-mortem: decode the TDB the abort stored.
    let tdb = Tdb::load_from(sys.mem(), Address::new(TDB_ADDR));
    println!("Transaction Diagnostic Block after the abort:");
    println!(
        "  abort code        : {} (9 = fetch conflict)",
        tdb.abort_code()
    );
    println!(
        "  conflict token    : {:#x?} (the line CPU 1 stored to)",
        tdb.conflict_token()
    );
    println!("  abort count       : {}", tdb.abort_count());
    println!("  GR2 at abort      : {:#x}", tdb.gr(2));
    println!();
    println!("NTSTG breadcrumbs that survived the rollback:");
    println!(
        "  phase-1 crumb = {}, phase-2 crumb = {}",
        sys.mem().load_u64(Address::new(CRUMBS)),
        sys.mem().load_u64(Address::new(CRUMBS + 8)),
    );
    assert_eq!(tdb.abort_code(), 9);
    assert_eq!(
        tdb.conflict_token(),
        Some(Address::new(SHARED).line().base().raw())
    );
    assert_eq!(sys.mem().load_u64(Address::new(CRUMBS)), 1);
    assert_eq!(sys.mem().load_u64(Address::new(CRUMBS + 8)), 2);
    println!();
    println!("The breadcrumbs show the program reached phase 2 before the");
    println!("conflict — while every transactional store was rolled back.");
    Ok(())
}
